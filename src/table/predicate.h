#ifndef DDGMS_TABLE_PREDICATE_H_
#define DDGMS_TABLE_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "table/value.h"

namespace ddgms {

/// Immutable row-predicate tree evaluated against a Table. Built with the
/// factory functions below and shared via shared_ptr so composite queries
/// stay cheap to copy.
///
///   PredicatePtr p = And(Eq("Gender", Value::Str("F")),
///                        Ge("Age", Value::Int(60)));
class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  virtual ~Predicate() = default;

  /// True if the row satisfies the predicate. Rows with a null in a
  /// referenced column fail comparison predicates (SQL-like semantics)
  /// except IsNull.
  virtual bool Matches(const Table& table, size_t row) const = 0;

  /// Verifies all referenced columns exist in the table.
  virtual Status Validate(const Table& table) const = 0;

  /// Human-readable rendering for logs/tests.
  virtual std::string ToString() const = 0;
};

/// column == literal
PredicatePtr Eq(std::string column, Value literal);
/// column != literal (null cells never match)
PredicatePtr Ne(std::string column, Value literal);
PredicatePtr Lt(std::string column, Value literal);
PredicatePtr Le(std::string column, Value literal);
PredicatePtr Gt(std::string column, Value literal);
PredicatePtr Ge(std::string column, Value literal);
/// column value is one of `options`
PredicatePtr In(std::string column, std::vector<Value> options);
/// lo <= column <= hi
PredicatePtr Between(std::string column, Value lo, Value hi);
/// column is null
PredicatePtr IsNull(std::string column);
/// column is not null
PredicatePtr NotNull(std::string column);
/// Conjunction / disjunction / negation.
PredicatePtr And(PredicatePtr a, PredicatePtr b);
PredicatePtr Or(PredicatePtr a, PredicatePtr b);
PredicatePtr Not(PredicatePtr inner);
/// Conjunction over a list (empty list matches everything).
PredicatePtr AllOf(std::vector<PredicatePtr> preds);
/// Matches every row.
PredicatePtr TruePredicate();

}  // namespace ddgms

#endif  // DDGMS_TABLE_PREDICATE_H_
