#ifndef DDGMS_TABLE_VALUE_H_
#define DDGMS_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/date.h"
#include "common/result.h"

namespace ddgms {

/// Logical type of a column or value.
enum class DataType {
  kNull = 0,   // untyped null (only for standalone Values)
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Returns the canonical name ("int64", "string", ...).
const char* DataTypeName(DataType type);

/// True for kInt64 and kDouble.
bool IsNumeric(DataType type);

/// Dynamically typed scalar cell. Used at API boundaries (row append,
/// predicate literals, query results); bulk storage lives in typed
/// ColumnVector arrays.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  static Value FromDate(Date v) { return Value(Payload(v)); }

  DataType type() const {
    switch (data_.index()) {
      case 0: return DataType::kNull;
      case 1: return DataType::kBool;
      case 2: return DataType::kInt64;
      case 3: return DataType::kDouble;
      case 4: return DataType::kString;
      case 5: return DataType::kDate;
    }
    return DataType::kNull;
  }

  bool is_null() const { return data_.index() == 0; }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (checked by assert in std::get).
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }
  Date date_value() const { return std::get<Date>(data_); }

  /// Numeric view: int64 and double coerce to double; bool to 0/1.
  /// Errors for null, string and date.
  Result<double> AsDouble() const;

  /// Human-readable rendering; nulls render as the empty string.
  std::string ToString() const;

  /// Total ordering across values: null sorts first; int64/double compare
  /// numerically with each other; otherwise values of different types
  /// order by type id. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Stable hash (used by group-by and dictionary keys).
  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Equals(b);
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !a.Equals(b);
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;

  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

/// std::hash adapter for Value (enables unordered containers keyed by
/// Value via explicit hasher).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.Equals(b);
  }
};

/// Hash for a vector of values (group-by keys, cube coordinates).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : vs) {
      h ^= v.Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_VALUE_H_
