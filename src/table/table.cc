#include "table/table.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <sstream>

#include "common/csv.h"
#include "common/faults.h"
#include "common/strings.h"

namespace ddgms {

namespace {

bool IsNullToken(const std::string& field,
                 const std::vector<std::string>& null_tokens) {
  for (const std::string& tok : null_tokens) {
    if (field == tok) return true;
  }
  return false;
}

// Type inference lattice for CSV import: a column starts as the most
// specific type its first non-null field supports and widens as needed.
DataType InferFieldType(const std::string& field) {
  if (ParseInt64(field).ok()) return DataType::kInt64;
  if (ParseDouble(field).ok()) return DataType::kDouble;
  if (Date::FromString(field).ok()) return DataType::kDate;
  std::string lower = ToLower(field);
  if (lower == "true" || lower == "false") return DataType::kBool;
  return DataType::kString;
}

// Widening rule: int64 -> double -> string; everything else -> string on
// conflict.
DataType WidenType(DataType a, DataType b) {
  if (a == b) return a;
  if ((a == DataType::kInt64 && b == DataType::kDouble) ||
      (a == DataType::kDouble && b == DataType::kInt64)) {
    return DataType::kDouble;
  }
  return DataType::kString;
}

// Preference order when majority-vote type inference ties: wider wins
// so fewer rows quarantine.
int TypeWideness(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 0;
    case DataType::kDouble:
      return 1;
    case DataType::kDate:
      return 2;
    case DataType::kBool:
      return 3;
    default:
      return 4;  // kString and anything else
  }
}

// Lenient-mode inference: per column, the most common specific type
// among non-null fields wins (ties go to the wider type), so a few
// corrupt fields quarantine their rows instead of silently widening
// the whole column to string. An int64 winner is promoted to double
// whenever any double votes exist, since ints parse as doubles anyway.
DataType InferTypeByMajority(const std::map<DataType, size_t>& votes) {
  if (votes.empty()) return DataType::kString;
  DataType best = DataType::kString;
  size_t best_count = 0;
  for (const auto& [type, count] : votes) {
    if (count > best_count ||
        (count == best_count &&
         TypeWideness(type) > TypeWideness(best))) {
      best = type;
      best_count = count;
    }
  }
  if (best == DataType::kInt64 && votes.count(DataType::kDouble) > 0) {
    return DataType::kDouble;
  }
  return best;
}

Result<Value> ParseTypedField(const std::string& field, DataType type) {
  switch (type) {
    case DataType::kBool: {
      DDGMS_ASSIGN_OR_RETURN(bool b, ParseBool(field));
      return Value::Bool(b);
    }
    case DataType::kInt64: {
      DDGMS_ASSIGN_OR_RETURN(int64_t i, ParseInt64(field));
      return Value::Int(i);
    }
    case DataType::kDouble: {
      DDGMS_ASSIGN_OR_RETURN(double d, ParseDouble(field));
      return Value::Real(d);
    }
    case DataType::kDate: {
      DDGMS_ASSIGN_OR_RETURN(Date d, Date::FromString(field));
      return Value::FromDate(d);
    }
    case DataType::kString:
      return Value::Str(field);
    case DataType::kNull:
      break;
  }
  return Status::Internal("bad field type");
}

}  // namespace

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.name, f.type);
  }
}

Result<Table> Table::FromRows(Schema schema, const std::vector<Row>& rows) {
  Table table(std::move(schema));
  for (const Row& row : rows) {
    DDGMS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> Table::FromCsv(const std::string& text,
                             const CsvReadOptions& options) {
  DDGMS_FAULT_POINT("table.from_csv");
  const bool lenient = options.error_mode == ErrorMode::kLenient;
  // In lenient mode all skipped rows flow into a sink; callers that
  // pass none still get well-defined (skip, don't fail) behaviour.
  QuarantineReport local_sink;
  QuarantineReport* quarantine =
      options.quarantine != nullptr ? options.quarantine : &local_sink;

  std::vector<CsvRecord> records;
  if (lenient) {
    DDGMS_ASSIGN_OR_RETURN(
        records, ParseCsvLenient(text, options.delimiter, quarantine));
  } else {
    DDGMS_ASSIGN_OR_RETURN(CsvDocument doc,
                           ParseCsvDocument(text, options.delimiter));
    records.reserve(doc.rows.size());
    for (size_t r = 0; r < doc.rows.size(); ++r) {
      records.push_back(CsvRecord{r + 1, std::move(doc.rows[r]),
                                  std::move(doc.quoted_empty[r])});
    }
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }
  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    names = records[0].fields;
    first_data_row = 1;
  } else {
    names.reserve(records[0].fields.size());
    for (size_t i = 0; i < records[0].fields.size(); ++i) {
      names.push_back(StrFormat("col%zu", i));
    }
  }
  const size_t num_cols = names.size();
  {
    size_t kept = first_data_row;
    for (size_t r = first_data_row; r < records.size(); ++r) {
      if (records[r].fields.size() == num_cols) {
        if (kept != r) records[kept] = std::move(records[r]);
        ++kept;
        continue;
      }
      Status bad = Status::ParseError(
          StrFormat("row %zu has %zu fields; expected %zu", r,
                    records[r].fields.size(), num_cols));
      if (!lenient) return bad;
      quarantine->Add("csv-ingest", records[r].record_number, /*field=*/"",
                      std::move(bad),
                      TruncateForQuarantine(FormatCsvLine(
                          records[r].fields, options.delimiter)));
    }
    records.resize(kept);
  }

  // Infer column types over all non-null fields (unless fixed).
  std::vector<DataType> types(num_cols, DataType::kString);
  if (!options.column_types.empty()) {
    if (options.column_types.size() != num_cols) {
      return Status::InvalidArgument(
          StrFormat("column_types has %zu entries; CSV has %zu columns",
                    options.column_types.size(), num_cols));
    }
    types = options.column_types;
  } else if (options.infer_types && !lenient) {
    std::vector<bool> seen(num_cols, false);
    for (size_t r = first_data_row; r < records.size(); ++r) {
      for (size_t c = 0; c < num_cols; ++c) {
        const std::string& field = records[r].fields[c];
        if (IsNullToken(field, options.null_tokens)) continue;
        DataType t = InferFieldType(field);
        types[c] = seen[c] ? WidenType(types[c], t) : t;
        seen[c] = true;
      }
    }
  } else if (options.infer_types) {
    std::vector<std::map<DataType, size_t>> votes(num_cols);
    for (size_t r = first_data_row; r < records.size(); ++r) {
      for (size_t c = 0; c < num_cols; ++c) {
        const std::string& field = records[r].fields[c];
        if (IsNullToken(field, options.null_tokens)) continue;
        ++votes[c][InferFieldType(field)];
      }
    }
    for (size_t c = 0; c < num_cols; ++c) {
      types[c] = InferTypeByMajority(votes[c]);
    }
  }

  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    fields.push_back(Field{names[c], types[c]});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table table(std::move(schema));
  for (size_t r = first_data_row; r < records.size(); ++r) {
    Row row;
    row.reserve(num_cols);
    Status bad;
    std::string bad_field;
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& field = records[r].fields[c];
      if (IsNullToken(field, options.null_tokens)) {
        // A quoted empty field is an intentional empty string, not a
        // missing value — but only when the caller opted in and the
        // column is textual (for numeric columns "" has no value to
        // carry, so it stays null).
        if (options.quoted_empty_is_string && field.empty() &&
            types[c] == DataType::kString &&
            c < records[r].quoted_empty.size() &&
            records[r].quoted_empty[c] != 0) {
          row.push_back(Value::Str(""));
          continue;
        }
        row.push_back(Value::Null());
        continue;
      }
      auto value = ParseTypedField(field, types[c]);
      if (!value.ok()) {
        bad = value.status();
        bad_field = names[c];
        break;
      }
      row.push_back(std::move(*value));
    }
    if (bad.ok()) {
      bad = table.AppendRow(row);
    }
    if (bad.ok()) continue;
    if (!lenient) return bad;
    quarantine->Add("csv-ingest", records[r].record_number,
                    std::move(bad_field), std::move(bad),
                    TruncateForQuarantine(FormatCsvLine(
                        records[r].fields, options.delimiter)));
  }
  return table;
}

Result<Table> Table::FromCsvFile(const std::string& path,
                                 const CsvReadOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return FromCsv(text, options);
}

Result<const ColumnVector*> Table::ColumnByName(
    const std::string& name) const {
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Result<ColumnVector*> Table::MutableColumnByName(const std::string& name) {
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values; table has %zu columns", row.size(),
                  columns_.size()));
  }
  // Validate all cells before mutating any column so a failed append
  // leaves the table unchanged.
  for (size_t c = 0; c < row.size(); ++c) {
    const Value& v = row[c];
    if (v.is_null()) continue;
    DataType ct = columns_[c].type();
    DataType vt = v.type();
    bool compatible =
        vt == ct || (ct == DataType::kDouble && vt == DataType::kInt64);
    if (!compatible) {
      return Status::InvalidArgument(
          StrFormat("cannot append %s value to %s column '%s'",
                    DataTypeName(vt), DataTypeName(ct),
                    columns_[c].name().c_str()));
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    // Compatibility was pre-validated above, so Append cannot fail.
    Status st = columns_[c].Append(row[c]);
    assert(st.ok());
    st.IgnoreError();
  }
  return Status::OK();
}

Row Table::GetRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    row.push_back(col.GetValue(i));
  }
  return row;
}

Result<Value> Table::GetCell(size_t row, const std::string& column) const {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col, ColumnByName(column));
  if (row >= col->size()) {
    return Status::OutOfRange(
        StrFormat("row %zu out of range (size %zu)", row, col->size()));
  }
  return col->GetValue(row);
}

Status Table::SetCell(size_t row, const std::string& column,
                      const Value& value) {
  DDGMS_ASSIGN_OR_RETURN(ColumnVector* col, MutableColumnByName(column));
  return col->SetValue(row, value);
}

Status Table::AddColumn(ColumnVector column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows; table has %zu",
                  column.name().c_str(), column.size(), num_rows()));
  }
  DDGMS_RETURN_IF_ERROR(
      schema_.AddField(Field{column.name(), column.type()}));
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(idx));
  std::vector<Field> fields = schema_.fields();
  fields.erase(fields.begin() + static_cast<ptrdiff_t>(idx));
  DDGMS_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(fields)));
  return Status::OK();
}

Status Table::RenameColumn(const std::string& from, const std::string& to) {
  if (schema_.HasField(to)) {
    return Status::AlreadyExists("column '" + to + "' already exists");
  }
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(from));
  std::vector<Field> fields = schema_.fields();
  fields[idx].name = to;
  DDGMS_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(fields)));
  columns_[idx].set_name(to);
  return Status::OK();
}

Result<Table> Table::Project(
    const std::vector<std::string>& columns) const {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
    indices.push_back(idx);
    fields.push_back(schema_.field(idx));
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));
  out.columns_.clear();
  for (size_t idx : indices) {
    out.columns_.push_back(columns_[idx]);
  }
  return out;
}

Table Table::Take(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.columns_.clear();
  for (const ColumnVector& col : columns_) {
    out.columns_.push_back(col.Take(indices));
  }
  return out;
}

std::vector<size_t> Table::MatchingRows(
    const std::function<bool(const Table&, size_t)>& pred) const {
  std::vector<size_t> out;
  const size_t n = num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (pred(*this, i)) out.push_back(i);
  }
  return out;
}

Table Table::Filter(
    const std::function<bool(const Table&, size_t)>& pred) const {
  return Take(MatchingRows(pred));
}

Result<Table> Table::SortBy(const std::vector<std::string>& keys,
                            bool ascending) const {
  std::vector<const ColumnVector*> key_cols;
  key_cols.reserve(keys.size());
  for (const std::string& k : keys) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col, ColumnByName(k));
    key_cols.push_back(col);
  }
  std::vector<size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) {
                     for (const ColumnVector* col : key_cols) {
                       int c = col->GetValue(a).Compare(col->GetValue(b));
                       if (c != 0) return ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Take(order);
}

Status Table::Concat(const Table& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument(
        "cannot concat tables with different schemas: [" +
        schema_.ToString() + "] vs [" + other.schema_.ToString() + "]");
  }
  const size_t n = other.num_rows();
  for (size_t i = 0; i < n; ++i) {
    DDGMS_RETURN_IF_ERROR(AppendRow(other.GetRow(i)));
  }
  return Status::OK();
}

std::string Table::ToCsv(const CsvWriteOptions& options) const {
  std::string out;
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  out += FormatCsvLine(header, options.delimiter);
  out += "\n";
  const size_t n = num_rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      const ColumnVector& col = columns_[c];
      std::string cell = col.GetValue(i).ToString();
      // Nulls always serialize bare; a present-but-empty string is
      // force-quoted ("") when the caller wants the two distinct.
      bool force_quote = options.quote_empty_strings && cell.empty() &&
                         !col.IsNull(i);
      out += FormatCsvField(cell, options.delimiter, force_quote);
    }
    out += "\n";
  }
  return out;
}

std::string Table::ToPrettyString(size_t max_rows) const {
  const size_t n = std::min(num_rows(), max_rows);
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header;
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  grid.push_back(header);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    for (const ColumnVector& col : columns_) {
      std::string s = col.GetValue(i).ToString();
      if (col.IsNull(i)) s = "(null)";
      cells.push_back(std::move(s));
    }
    grid.push_back(std::move(cells));
  }
  std::vector<size_t> widths(columns_.size(), 0);
  for (const auto& row : grid) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < grid.size(); ++r) {
    for (size_t c = 0; c < grid[r].size(); ++c) {
      os << grid[r][c]
         << std::string(widths[c] - grid[r][c].size() + 2, ' ');
    }
    os << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      os << std::string(total, '-') << "\n";
    }
  }
  if (num_rows() > max_rows) {
    os << "... (" << num_rows() - max_rows << " more rows)\n";
  }
  return os.str();
}

uint64_t Table::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& col : columns_) bytes += col.ApproxBytes();
  return bytes;
}

}  // namespace ddgms
