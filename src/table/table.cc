#include "table/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

#include "common/csv.h"
#include "common/strings.h"

namespace ddgms {

namespace {

bool IsNullToken(const std::string& field,
                 const std::vector<std::string>& null_tokens) {
  for (const std::string& tok : null_tokens) {
    if (field == tok) return true;
  }
  return false;
}

// Type inference lattice for CSV import: a column starts as the most
// specific type its first non-null field supports and widens as needed.
DataType InferFieldType(const std::string& field) {
  if (ParseInt64(field).ok()) return DataType::kInt64;
  if (ParseDouble(field).ok()) return DataType::kDouble;
  if (Date::FromString(field).ok()) return DataType::kDate;
  std::string lower = ToLower(field);
  if (lower == "true" || lower == "false") return DataType::kBool;
  return DataType::kString;
}

// Widening rule: int64 -> double -> string; everything else -> string on
// conflict.
DataType WidenType(DataType a, DataType b) {
  if (a == b) return a;
  if ((a == DataType::kInt64 && b == DataType::kDouble) ||
      (a == DataType::kDouble && b == DataType::kInt64)) {
    return DataType::kDouble;
  }
  return DataType::kString;
}

Result<Value> ParseTypedField(const std::string& field, DataType type) {
  switch (type) {
    case DataType::kBool: {
      DDGMS_ASSIGN_OR_RETURN(bool b, ParseBool(field));
      return Value::Bool(b);
    }
    case DataType::kInt64: {
      DDGMS_ASSIGN_OR_RETURN(int64_t i, ParseInt64(field));
      return Value::Int(i);
    }
    case DataType::kDouble: {
      DDGMS_ASSIGN_OR_RETURN(double d, ParseDouble(field));
      return Value::Real(d);
    }
    case DataType::kDate: {
      DDGMS_ASSIGN_OR_RETURN(Date d, Date::FromString(field));
      return Value::FromDate(d);
    }
    case DataType::kString:
      return Value::Str(field);
    case DataType::kNull:
      break;
  }
  return Status::Internal("bad field type");
}

}  // namespace

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.name, f.type);
  }
}

Result<Table> Table::FromRows(Schema schema, const std::vector<Row>& rows) {
  Table table(std::move(schema));
  for (const Row& row : rows) {
    DDGMS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> Table::FromCsv(const std::string& text,
                             const CsvReadOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(auto records, ParseCsv(text, options.delimiter));
  if (records.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }
  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    names = records[0];
    first_data_row = 1;
  } else {
    names.reserve(records[0].size());
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back(StrFormat("col%zu", i));
    }
  }
  const size_t num_cols = names.size();
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (records[r].size() != num_cols) {
      return Status::ParseError(
          StrFormat("row %zu has %zu fields; expected %zu", r,
                    records[r].size(), num_cols));
    }
  }

  // Infer column types over all non-null fields (unless fixed).
  std::vector<DataType> types(num_cols, DataType::kString);
  if (!options.column_types.empty()) {
    if (options.column_types.size() != num_cols) {
      return Status::InvalidArgument(
          StrFormat("column_types has %zu entries; CSV has %zu columns",
                    options.column_types.size(), num_cols));
    }
    types = options.column_types;
  } else if (options.infer_types) {
    std::vector<bool> seen(num_cols, false);
    for (size_t r = first_data_row; r < records.size(); ++r) {
      for (size_t c = 0; c < num_cols; ++c) {
        const std::string& field = records[r][c];
        if (IsNullToken(field, options.null_tokens)) continue;
        DataType t = InferFieldType(field);
        types[c] = seen[c] ? WidenType(types[c], t) : t;
        seen[c] = true;
      }
    }
  }

  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    fields.push_back(Field{names[c], types[c]});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table table(std::move(schema));
  for (size_t r = first_data_row; r < records.size(); ++r) {
    Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& field = records[r][c];
      if (IsNullToken(field, options.null_tokens)) {
        row.push_back(Value::Null());
        continue;
      }
      DDGMS_ASSIGN_OR_RETURN(Value v, ParseTypedField(field, types[c]));
      row.push_back(std::move(v));
    }
    DDGMS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> Table::FromCsvFile(const std::string& path,
                                 const CsvReadOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return FromCsv(text, options);
}

Result<const ColumnVector*> Table::ColumnByName(
    const std::string& name) const {
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Result<ColumnVector*> Table::MutableColumnByName(const std::string& name) {
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values; table has %zu columns", row.size(),
                  columns_.size()));
  }
  // Validate all cells before mutating any column so a failed append
  // leaves the table unchanged.
  for (size_t c = 0; c < row.size(); ++c) {
    const Value& v = row[c];
    if (v.is_null()) continue;
    DataType ct = columns_[c].type();
    DataType vt = v.type();
    bool compatible =
        vt == ct || (ct == DataType::kDouble && vt == DataType::kInt64);
    if (!compatible) {
      return Status::InvalidArgument(
          StrFormat("cannot append %s value to %s column '%s'",
                    DataTypeName(vt), DataTypeName(ct),
                    columns_[c].name().c_str()));
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    Status st = columns_[c].Append(row[c]);
    assert(st.ok());
    (void)st;
  }
  return Status::OK();
}

Row Table::GetRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    row.push_back(col.GetValue(i));
  }
  return row;
}

Result<Value> Table::GetCell(size_t row, const std::string& column) const {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col, ColumnByName(column));
  if (row >= col->size()) {
    return Status::OutOfRange(
        StrFormat("row %zu out of range (size %zu)", row, col->size()));
  }
  return col->GetValue(row);
}

Status Table::SetCell(size_t row, const std::string& column,
                      const Value& value) {
  DDGMS_ASSIGN_OR_RETURN(ColumnVector* col, MutableColumnByName(column));
  return col->SetValue(row, value);
}

Status Table::AddColumn(ColumnVector column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows; table has %zu",
                  column.name().c_str(), column.size(), num_rows()));
  }
  DDGMS_RETURN_IF_ERROR(
      schema_.AddField(Field{column.name(), column.type()}));
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(idx));
  std::vector<Field> fields = schema_.fields();
  fields.erase(fields.begin() + static_cast<ptrdiff_t>(idx));
  DDGMS_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(fields)));
  return Status::OK();
}

Status Table::RenameColumn(const std::string& from, const std::string& to) {
  if (schema_.HasField(to)) {
    return Status::AlreadyExists("column '" + to + "' already exists");
  }
  DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(from));
  std::vector<Field> fields = schema_.fields();
  fields[idx].name = to;
  DDGMS_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(fields)));
  columns_[idx].set_name(to);
  return Status::OK();
}

Result<Table> Table::Project(
    const std::vector<std::string>& columns) const {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    DDGMS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
    indices.push_back(idx);
    fields.push_back(schema_.field(idx));
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));
  out.columns_.clear();
  for (size_t idx : indices) {
    out.columns_.push_back(columns_[idx]);
  }
  return out;
}

Table Table::Take(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.columns_.clear();
  for (const ColumnVector& col : columns_) {
    out.columns_.push_back(col.Take(indices));
  }
  return out;
}

std::vector<size_t> Table::MatchingRows(
    const std::function<bool(const Table&, size_t)>& pred) const {
  std::vector<size_t> out;
  const size_t n = num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (pred(*this, i)) out.push_back(i);
  }
  return out;
}

Table Table::Filter(
    const std::function<bool(const Table&, size_t)>& pred) const {
  return Take(MatchingRows(pred));
}

Result<Table> Table::SortBy(const std::vector<std::string>& keys,
                            bool ascending) const {
  std::vector<const ColumnVector*> key_cols;
  key_cols.reserve(keys.size());
  for (const std::string& k : keys) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col, ColumnByName(k));
    key_cols.push_back(col);
  }
  std::vector<size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) {
                     for (const ColumnVector* col : key_cols) {
                       int c = col->GetValue(a).Compare(col->GetValue(b));
                       if (c != 0) return ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Take(order);
}

Status Table::Concat(const Table& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument(
        "cannot concat tables with different schemas: [" +
        schema_.ToString() + "] vs [" + other.schema_.ToString() + "]");
  }
  const size_t n = other.num_rows();
  for (size_t i = 0; i < n; ++i) {
    DDGMS_RETURN_IF_ERROR(AppendRow(other.GetRow(i)));
  }
  return Status::OK();
}

std::string Table::ToCsv(char delimiter) const {
  std::string out;
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  out += FormatCsvLine(header, delimiter);
  out += "\n";
  const size_t n = num_rows();
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> fields;
    fields.reserve(columns_.size());
    for (const ColumnVector& col : columns_) {
      fields.push_back(col.GetValue(i).ToString());
    }
    out += FormatCsvLine(fields, delimiter);
    out += "\n";
  }
  return out;
}

std::string Table::ToPrettyString(size_t max_rows) const {
  const size_t n = std::min(num_rows(), max_rows);
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header;
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  grid.push_back(header);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    for (const ColumnVector& col : columns_) {
      std::string s = col.GetValue(i).ToString();
      if (col.IsNull(i)) s = "(null)";
      cells.push_back(std::move(s));
    }
    grid.push_back(std::move(cells));
  }
  std::vector<size_t> widths(columns_.size(), 0);
  for (const auto& row : grid) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < grid.size(); ++r) {
    for (size_t c = 0; c < grid[r].size(); ++c) {
      os << grid[r][c]
         << std::string(widths[c] - grid[r][c].size() + 2, ' ');
    }
    os << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      os << std::string(total, '-') << "\n";
    }
  }
  if (num_rows() > max_rows) {
    os << "... (" << num_rows() - max_rows << " more rows)\n";
  }
  return os.str();
}

}  // namespace ddgms
