#include "warehouse/snapshot.h"

#include <vector>

#include "common/checksum.h"
#include "common/faults.h"
#include "common/io.h"
#include "common/strings.h"
#include "warehouse/schema_def.h"

namespace ddgms::warehouse {

namespace {

constexpr char kMagic[] = "DDWSNAP1";  // 8 bytes, no terminator on disk
constexpr size_t kMagicSize = 8;

enum SectionKind : uint8_t {
  kSchemaSection = 1,
  kFactSection = 2,
  kDimensionSection = 3,
};

void EncodeColumn(const ColumnVector& col, std::string* out) {
  const size_t rows = col.size();
  PutLengthPrefixed(out, col.name());
  PutU8(out, static_cast<uint8_t>(col.type()));
  // Packed validity bitmap, bit i set = row i is non-null.
  std::string bitmap((rows + 7) / 8, '\0');
  for (size_t i = 0; i < rows; ++i) {
    if (!col.IsNull(i)) bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  out->append(bitmap);
  switch (col.type()) {
    case DataType::kBool:
      for (size_t i = 0; i < rows; ++i) {
        PutU8(out, !col.IsNull(i) && col.BoolAt(i) ? 1 : 0);
      }
      break;
    case DataType::kInt64:
      for (size_t i = 0; i < rows; ++i) {
        PutI64(out, col.IsNull(i) ? 0 : col.IntAt(i));
      }
      break;
    case DataType::kDouble:
      for (size_t i = 0; i < rows; ++i) {
        PutF64(out, col.IsNull(i) ? 0.0 : col.DoubleAt(i));
      }
      break;
    case DataType::kDate:
      for (size_t i = 0; i < rows; ++i) {
        PutI32(out,
               col.IsNull(i) ? 0 : col.DateAt(i).days_since_epoch());
      }
      break;
    case DataType::kString:
      for (size_t i = 0; i < rows; ++i) {
        PutLengthPrefixed(out,
                          col.IsNull(i) ? std::string_view()
                                        : std::string_view(col.StringAt(i)));
      }
      break;
    case DataType::kNull:
      break;  // excluded by ColumnVector's constructor contract
  }
}

Result<ColumnVector> DecodeColumn(ByteReader* reader, size_t rows) {
  DDGMS_ASSIGN_OR_RETURN(std::string_view name,
                         reader->ReadLengthPrefixed());
  DDGMS_ASSIGN_OR_RETURN(uint8_t type_tag, reader->ReadU8());
  if (type_tag == 0 || type_tag > static_cast<uint8_t>(DataType::kDate)) {
    return Status::ParseError(
        StrFormat("bad column type tag %u for column '%s'",
                  static_cast<unsigned>(type_tag),
                  std::string(name).c_str()));
  }
  const DataType type = static_cast<DataType>(type_tag);
  DDGMS_ASSIGN_OR_RETURN(std::string_view bitmap,
                         reader->ReadBytes((rows + 7) / 8));
  auto valid = [&bitmap](size_t i) {
    return (static_cast<unsigned char>(bitmap[i / 8]) >> (i % 8)) & 1u;
  };
  ColumnVector col(std::string(name), type);
  for (size_t i = 0; i < rows; ++i) {
    switch (type) {
      case DataType::kBool: {
        DDGMS_ASSIGN_OR_RETURN(uint8_t v, reader->ReadU8());
        if (valid(i)) {
          col.AppendBool(v != 0);
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kInt64: {
        DDGMS_ASSIGN_OR_RETURN(int64_t v, reader->ReadI64());
        if (valid(i)) {
          col.AppendInt(v);
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kDouble: {
        DDGMS_ASSIGN_OR_RETURN(double v, reader->ReadF64());
        if (valid(i)) {
          col.AppendDouble(v);
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kDate: {
        DDGMS_ASSIGN_OR_RETURN(int32_t v, reader->ReadI32());
        if (valid(i)) {
          col.AppendDate(Date(v));
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kString: {
        DDGMS_ASSIGN_OR_RETURN(std::string_view v,
                               reader->ReadLengthPrefixed());
        if (valid(i)) {
          col.AppendString(std::string(v));
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kNull:
        return Status::ParseError("null-typed column in snapshot");
    }
  }
  return col;
}

void AppendSection(std::string* out, SectionKind kind,
                   std::string_view name, std::string_view payload) {
  PutU8(out, static_cast<uint8_t>(kind));
  PutLengthPrefixed(out, name);
  PutU64(out, payload.size());
  PutU32(out, MaskCrc32c(Crc32c(payload)));
  out->append(payload.data(), payload.size());
}

struct Section {
  SectionKind kind;
  std::string name;
  std::string_view payload;
};

Result<Section> ReadSection(ByteReader* reader) {
  DDGMS_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadU8());
  if (kind < kSchemaSection || kind > kDimensionSection) {
    return Status::ParseError(
        StrFormat("bad snapshot section kind %u at offset %zu",
                  static_cast<unsigned>(kind), reader->offset() - 1));
  }
  DDGMS_ASSIGN_OR_RETURN(std::string_view name,
                         reader->ReadLengthPrefixed());
  DDGMS_ASSIGN_OR_RETURN(uint64_t payload_len, reader->ReadU64());
  DDGMS_ASSIGN_OR_RETURN(uint32_t stored_crc, reader->ReadU32());
  DDGMS_ASSIGN_OR_RETURN(std::string_view payload,
                         reader->ReadBytes(payload_len));
  if (MaskCrc32c(Crc32c(payload)) != stored_crc) {
    return Status::DataLoss(
        StrFormat("checksum mismatch in snapshot section '%s' "
                  "(%llu payload bytes)",
                  std::string(name).c_str(),
                  static_cast<unsigned long long>(payload_len)));
  }
  return Section{static_cast<SectionKind>(kind), std::string(name),
                 payload};
}

}  // namespace

void EncodeTable(const Table& table, std::string* out) {
  PutU32(out, static_cast<uint32_t>(table.num_columns()));
  PutU64(out, table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EncodeColumn(table.column(c), out);
  }
}

Result<Table> DecodeTable(std::string_view bytes) {
  ByteReader reader(bytes);
  DDGMS_ASSIGN_OR_RETURN(uint32_t num_columns, reader.ReadU32());
  DDGMS_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadU64());
  Table table;
  for (uint32_t c = 0; c < num_columns; ++c) {
    DDGMS_ASSIGN_OR_RETURN(ColumnVector col,
                           DecodeColumn(&reader, num_rows));
    DDGMS_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
  }
  if (reader.remaining() != 0) {
    return Status::ParseError(
        StrFormat("%zu trailing bytes after table payload",
                  reader.remaining()));
  }
  return table;
}

std::string EncodeSnapshot(const Warehouse& wh) {
  std::string out;
  out.append(kMagic, kMagicSize);
  PutU32(&out, kSnapshotFormatVersion);
  PutU32(&out, static_cast<uint32_t>(2 + wh.dimensions().size()));
  PutU32(&out, MaskCrc32c(Crc32c(out)));

  AppendSection(&out, kSchemaSection, "schema",
                SerializeSchemaDef(wh.def()));
  std::string payload;
  EncodeTable(wh.fact(), &payload);
  AppendSection(&out, kFactSection, "fact", payload);
  for (const Dimension& dim : wh.dimensions()) {
    payload.clear();
    EncodeTable(dim.table(), &payload);
    AppendSection(&out, kDimensionSection, dim.name(), payload);
  }
  return out;
}

Result<Warehouse> DecodeSnapshot(std::string_view bytes) {
  ByteReader reader(bytes);
  DDGMS_ASSIGN_OR_RETURN(std::string_view magic,
                         reader.ReadBytes(kMagicSize));
  if (magic != std::string_view(kMagic, kMagicSize)) {
    return Status::ParseError("not a ddgms snapshot (bad magic)");
  }
  DDGMS_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kSnapshotFormatVersion) {
    return Status::ParseError(
        StrFormat("unsupported snapshot format version %u", version));
  }
  DDGMS_ASSIGN_OR_RETURN(uint32_t section_count, reader.ReadU32());
  DDGMS_ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  if (MaskCrc32c(Crc32c(bytes.substr(0, kMagicSize + 8))) != stored_crc) {
    return Status::DataLoss("snapshot header checksum mismatch");
  }

  const StarSchemaDef* parsed_def = nullptr;
  StarSchemaDef def;
  bool have_fact = false;
  Table fact;
  std::vector<std::pair<std::string, Table>> dim_tables;
  for (uint32_t s = 0; s < section_count; ++s) {
    DDGMS_FAULT_POINT("snapshot.read_section");
    DDGMS_ASSIGN_OR_RETURN(Section section, ReadSection(&reader));
    switch (section.kind) {
      case kSchemaSection: {
        DDGMS_ASSIGN_OR_RETURN(
            def, ParseSchemaDef(std::string(section.payload)));
        parsed_def = &def;
        break;
      }
      case kFactSection: {
        DDGMS_ASSIGN_OR_RETURN(fact, DecodeTable(section.payload));
        have_fact = true;
        break;
      }
      case kDimensionSection: {
        DDGMS_ASSIGN_OR_RETURN(Table dim_table,
                               DecodeTable(section.payload));
        dim_tables.emplace_back(section.name, std::move(dim_table));
        break;
      }
    }
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss(
        StrFormat("%zu trailing bytes after last snapshot section",
                  reader.remaining()));
  }
  if (parsed_def == nullptr || !have_fact) {
    return Status::DataLoss("snapshot is missing schema or fact section");
  }

  // Assemble dimensions in schema order so surrogate keys line up.
  std::vector<Dimension> dimensions;
  dimensions.reserve(def.dimensions.size());
  for (const DimensionDef& dim_def : def.dimensions) {
    Table* found = nullptr;
    for (auto& [name, dim_table] : dim_tables) {
      if (name == dim_def.name) {
        found = &dim_table;
        break;
      }
    }
    if (found == nullptr) {
      return Status::DataLoss("snapshot is missing dimension table '" +
                              dim_def.name + "'");
    }
    dimensions.emplace_back(dim_def, std::move(*found));
  }

  Warehouse wh(std::move(def), std::move(fact), std::move(dimensions));
  IntegrityReport report = wh.CheckIntegrity();
  if (!report.ok) {
    return Status::DataLoss(
        "snapshot decoded but failed warehouse integrity check:\n" +
        report.ToString());
  }
  return wh;
}

Status WriteSnapshotFile(const Warehouse& wh, const std::string& path,
                         bool sync) {
  DDGMS_FAULT_POINT("snapshot.write");
  return WriteFileDurable(path, EncodeSnapshot(wh), sync);
}

Result<Warehouse> ReadSnapshotFile(const std::string& path) {
  DDGMS_FAULT_POINT("snapshot.read");
  DDGMS_ASSIGN_OR_RETURN(std::string bytes, ReadFileBinary(path));
  return DecodeSnapshot(bytes);
}

}  // namespace ddgms::warehouse
