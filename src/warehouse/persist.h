#ifndef DDGMS_WAREHOUSE_PERSIST_H_
#define DDGMS_WAREHOUSE_PERSIST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "warehouse/journal.h"
#include "warehouse/warehouse.h"

namespace ddgms::warehouse {

/// -------------------------------------------------------------------
/// Durable warehouse storage
///
/// Two tiers live in this header:
///
///  * SaveWarehouse / LoadWarehouse — the original CSV directory
///    format (schema.txt + per-table .csv/.meta pairs), kept for
///    interchange with spreadsheet tooling. Empty strings round-trip
///    correctly (written as quoted "" so they stay distinct from
///    nulls; files written before this encoding still load, reading
///    bare empty fields as nulls as they always did).
///
///  * DurableWarehouseStore — the crash-safe binary tier: generation-
///    numbered snapshot files (snapshot.h) plus a write-ahead journal
///    (journal.h) per generation, tied together by a checksummed
///    MANIFEST. Layout of a store directory:
///
///      <dir>/MANIFEST               current generation pointer
///      <dir>/snapshot-<seq>.ddws    binary snapshot per generation
///      <dir>/journal-<seq>.wal      batches appended since snapshot
///
///    Commit protocol (CommitSnapshot): write snapshot-<seq+1> durably
///    (temp + fsync + rename + dir fsync), create its empty journal,
///    then atomically rewrite MANIFEST — the MANIFEST swap is the
///    commit point, so a crash anywhere in between leaves the previous
///    generation intact and current. Old generations are pruned after
///    commit, always retaining one predecessor as a recovery fallback.
///
///    Recovery (Recover): walk back from the MANIFEST generation
///    (directory scan when the MANIFEST itself is corrupt) to the
///    newest readable snapshot, replay its journal up to the first
///    corrupt or unappliable record, truncate the torn tail, and
///    report exactly what was salvaged and what was dropped. The
///    outcome is always "full recovery" or a loud Status — never
///    silently wrong data.
/// -------------------------------------------------------------------

/// Writes the warehouse under `dir` (which must exist) as CSV.
Status SaveWarehouse(const Warehouse& wh, const std::string& dir);

/// Loads a warehouse previously written by SaveWarehouse and
/// re-verifies integrity.
Result<Warehouse> LoadWarehouse(const std::string& dir);

/// Knobs for the binary durable tier.
struct DurabilityOptions {
  /// fsync data and directories at every commit point. Disable only in
  /// tests that do not simulate power loss — without it an OK from
  /// CommitSnapshot/AppendBatch does not survive a crash.
  bool sync = true;
  /// Snapshot generations kept on disk (the current one plus
  /// fallbacks). Minimum 1; the default keeps one predecessor so
  /// recovery survives a corrupt current snapshot.
  int keep_snapshots = 2;
};

/// What Recover() salvaged, and from where.
struct RecoveryReport {
  /// Generation the warehouse was recovered from.
  uint64_t seq = 0;
  /// Snapshot file the recovered state is based on.
  std::string snapshot_file;
  /// False when the MANIFEST was missing/corrupt and the generation had
  /// to be found by directory scan.
  bool manifest_intact = true;
  /// True when the MANIFEST's generation was unreadable and an older
  /// snapshot was used instead.
  bool used_fallback = false;
  /// Snapshots that failed verification, newest first ("file: why").
  std::vector<std::string> skipped_snapshots;
  /// Journal records decoded, verified and applied on top of the
  /// snapshot, and the fact rows they contributed.
  size_t journal_records_applied = 0;
  size_t journal_rows_applied = 0;
  /// The journal tail that could not be used: why replay stopped
  /// (empty when the journal was clean), and how much was cut off.
  std::string journal_corruption;
  size_t journal_records_dropped = 0;
  uint64_t journal_bytes_dropped = 0;
  /// True when the corrupt tail was truncated away so the journal is
  /// clean for subsequent appends.
  bool journal_truncated = false;

  /// True when nothing was lost: the manifest generation loaded and
  /// its journal replayed completely.
  bool clean() const {
    return manifest_intact && !used_fallback && journal_corruption.empty();
  }

  std::string ToString() const;
};

/// The crash-safe snapshot + write-ahead-journal store. One instance
/// owns a store directory between checkpoints; it is move-only (it
/// holds the open journal descriptor).
class DurableWarehouseStore {
 public:
  /// Opens (or initialises) the store in `dir`, which must exist. A
  /// corrupt MANIFEST does not fail Open — it is remembered and
  /// surfaced by Load (error) or Recover (fallback scan).
  static Result<DurableWarehouseStore> Open(std::string dir,
                                            DurabilityOptions options = {});

  /// Commits a new generation: snapshot of `wh`, fresh journal, then
  /// the atomic MANIFEST swap; prunes generations beyond
  /// options.keep_snapshots. On return the store accepts AppendBatch.
  Status CommitSnapshot(const Warehouse& wh);

  /// Durably appends one ingest batch (Warehouse::AppendRows source
  /// form) to the current generation's journal. FailedPrecondition
  /// until a generation exists (CommitSnapshot / Load / Recover).
  Status AppendBatch(const Table& batch);

  /// Strict load of the current generation: MANIFEST, snapshot and the
  /// complete journal must all verify and apply — any corruption is an
  /// error (use Recover to salvage). On success the store is ready for
  /// AppendBatch.
  Result<Warehouse> Load();

  /// Graceful degradation: recovers the newest intact state, details
  /// in `report` (required). Fails loudly only when no snapshot
  /// generation is readable at all. On success the store points at the
  /// recovered generation and is ready for AppendBatch.
  Result<Warehouse> Recover(RecoveryReport* report);

  /// Current generation number (0 = no snapshot committed yet).
  uint64_t seq() const { return seq_; }
  bool has_snapshot() const { return seq_ > 0; }
  const std::string& dir() const { return dir_; }
  const DurabilityOptions& options() const { return options_; }

  std::string SnapshotPath(uint64_t seq) const;
  std::string JournalPath(uint64_t seq) const;
  std::string ManifestPath() const;

 private:
  DurableWarehouseStore(std::string dir, DurabilityOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// Atomically points the MANIFEST at generation `seq_`.
  Status WriteManifest();
  /// Deletes generations older than the retention window plus any
  /// stray temp files.
  void PruneGenerations();
  /// Replays JournalPath(seq) on top of `wh`. Strict mode errors on
  /// any corruption or unappliable record; lenient mode rolls back to
  /// the longest appliable prefix and describes the dropped tail in
  /// `report`.
  Result<Warehouse> ApplyJournal(Warehouse wh, uint64_t seq, bool strict,
                                 RecoveryReport* report);
  /// Opens the journal writer for generation `seq_`.
  Status OpenJournal();

  std::string dir_;
  DurabilityOptions options_;
  uint64_t seq_ = 0;
  /// Newest generation seen on disk (>= seq_ when the MANIFEST lags a
  /// crashed commit); the next commit always goes above it.
  uint64_t max_seq_seen_ = 0;
  /// Empty when the MANIFEST was readable at Open.
  std::string manifest_error_;
  std::optional<JournalWriter> journal_;
};

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_PERSIST_H_
