#ifndef DDGMS_WAREHOUSE_PERSIST_H_
#define DDGMS_WAREHOUSE_PERSIST_H_

#include <string>

#include "common/result.h"
#include "warehouse/warehouse.h"

namespace ddgms::warehouse {

/// Durable storage for a populated warehouse as a directory of CSV
/// files plus sidecar metadata:
///
///   <dir>/schema.txt         — star-schema declaration
///   <dir>/fact.csv + .meta   — fact table (meta pins column types)
///   <dir>/dim_<Name>.csv + .meta
///
/// Known caveat of the CSV encoding: empty strings round-trip as
/// nulls. Clinical band labels are never empty, so this does not
/// affect DD-DGMS data.

/// Writes the warehouse under `dir` (which must exist).
Status SaveWarehouse(const Warehouse& wh, const std::string& dir);

/// Loads a warehouse previously written by SaveWarehouse and
/// re-verifies integrity.
Result<Warehouse> LoadWarehouse(const std::string& dir);

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_PERSIST_H_
