#include "warehouse/persist.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/csv.h"
#include "common/faults.h"
#include "common/io.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "warehouse/schema_def.h"
#include "warehouse/snapshot.h"

namespace ddgms::warehouse {

namespace {

Result<DataType> DataTypeFromName(const std::string& name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int64") return DataType::kInt64;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  if (name == "date") return DataType::kDate;
  return Status::ParseError("unknown data type '" + name + "'");
}

Status WriteTableWithMeta(const Table& table, const std::string& base) {
  // Quote empty strings so they stay distinct from nulls on reload
  // (historically both serialized as a bare empty field and loaded
  // back as null).
  CsvWriteOptions csv_options;
  csv_options.quote_empty_strings = true;
  DDGMS_RETURN_IF_ERROR(WriteFile(base + ".csv", table.ToCsv(csv_options)));
  std::string meta;
  for (const Field& f : table.schema().fields()) {
    meta += f.name;
    meta += ":";
    meta += DataTypeName(f.type);
    meta += "\n";
  }
  return WriteFile(base + ".meta", meta);
}

Result<Table> ReadTableWithMeta(const std::string& base) {
  DDGMS_ASSIGN_OR_RETURN(std::string meta, ReadFile(base + ".meta"));
  CsvReadOptions options;
  // A quoted empty field is an empty string, not a null — the reader
  // side of the quote_empty_strings encoding above. Files written
  // before that encoding carry bare empty fields, which still read as
  // nulls exactly as they used to.
  options.quoted_empty_is_string = true;
  for (const std::string& line : Split(meta, '\n')) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    size_t colon = trimmed.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("bad meta line '" + trimmed + "' in " +
                                base + ".meta");
    }
    DDGMS_ASSIGN_OR_RETURN(DataType type,
                           DataTypeFromName(trimmed.substr(colon + 1)));
    options.column_types.push_back(type);
  }
  return Table::FromCsvFile(base + ".csv", options);
}

/// Parsed MANIFEST contents.
struct ManifestData {
  uint64_t seq = 0;
  std::string snapshot;
  std::string journal;
};

constexpr char kManifestHeader[] = "ddgms-manifest v1";

std::string FormatManifest(uint64_t seq, const std::string& snapshot,
                           const std::string& journal) {
  std::string text = std::string(kManifestHeader) + "\n";
  text += StrFormat("seq %llu\n", static_cast<unsigned long long>(seq));
  text += "snapshot " + snapshot + "\n";
  text += "journal " + journal + "\n";
  text += StrFormat("crc %08x\n", Crc32c(text));
  return text;
}

Result<ManifestData> ParseManifest(const std::string& text) {
  size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::DataLoss("MANIFEST has no crc line");
  }
  std::string crc_text(Trim(text.substr(crc_pos + 4)));
  char* end = nullptr;
  unsigned long stored = std::strtoul(crc_text.c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || crc_text.empty()) {
    return Status::DataLoss("MANIFEST crc line is malformed");
  }
  if (Crc32c(std::string_view(text).substr(0, crc_pos)) !=
      static_cast<uint32_t>(stored)) {
    return Status::DataLoss("MANIFEST checksum mismatch");
  }
  ManifestData data;
  bool have_header = false;
  bool have_seq = false;
  for (const std::string& raw_line : Split(text.substr(0, crc_pos), '\n')) {
    std::string line(Trim(raw_line));
    if (line.empty()) continue;
    if (!have_header) {
      if (line != kManifestHeader) {
        return Status::ParseError("not a ddgms MANIFEST: '" + line + "'");
      }
      have_header = true;
      continue;
    }
    std::vector<std::string> parts = Split(line, ' ');
    if (parts.size() == 2 && parts[0] == "seq") {
      DDGMS_ASSIGN_OR_RETURN(int64_t seq, ParseInt64(parts[1]));
      if (seq <= 0) {
        return Status::ParseError("MANIFEST seq must be positive");
      }
      data.seq = static_cast<uint64_t>(seq);
      have_seq = true;
    } else if (parts.size() == 2 && parts[0] == "snapshot") {
      data.snapshot = parts[1];
    } else if (parts.size() == 2 && parts[0] == "journal") {
      data.journal = parts[1];
    } else {
      return Status::ParseError("bad MANIFEST line: '" + line + "'");
    }
  }
  if (!have_header || !have_seq || data.snapshot.empty() ||
      data.journal.empty()) {
    return Status::ParseError("MANIFEST is missing required fields");
  }
  return data;
}

/// Generation number encoded in a snapshot/journal file name, or 0
/// when `name` is not one.
uint64_t GenerationFromName(const std::string& name,
                            std::string_view prefix,
                            std::string_view suffix) {
  if (!StartsWith(name, prefix) || !EndsWith(name, suffix) ||
      name.size() <= prefix.size() + suffix.size()) {
    return 0;
  }
  std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  auto parsed = ParseInt64(digits);
  if (!parsed.ok() || parsed.value() <= 0) return 0;
  return static_cast<uint64_t>(parsed.value());
}

}  // namespace

Status SaveWarehouse(const Warehouse& wh, const std::string& dir) {
  DDGMS_RETURN_IF_ERROR(
      WriteFile(dir + "/schema.txt", SerializeSchemaDef(wh.def())));
  DDGMS_RETURN_IF_ERROR(WriteTableWithMeta(wh.fact(), dir + "/fact"));
  for (const Dimension& dim : wh.dimensions()) {
    DDGMS_RETURN_IF_ERROR(
        WriteTableWithMeta(dim.table(), dir + "/dim_" + dim.name()));
  }
  return Status::OK();
}

Result<Warehouse> LoadWarehouse(const std::string& dir) {
  DDGMS_ASSIGN_OR_RETURN(std::string schema_text,
                         ReadFile(dir + "/schema.txt"));
  DDGMS_ASSIGN_OR_RETURN(StarSchemaDef def, ParseSchemaDef(schema_text));
  DDGMS_ASSIGN_OR_RETURN(Table fact, ReadTableWithMeta(dir + "/fact"));
  std::vector<Dimension> dimensions;
  dimensions.reserve(def.dimensions.size());
  for (const DimensionDef& dim_def : def.dimensions) {
    DDGMS_ASSIGN_OR_RETURN(Table dim_table,
                           ReadTableWithMeta(dir + "/dim_" + dim_def.name));
    dimensions.emplace_back(dim_def, std::move(dim_table));
  }
  Warehouse wh(std::move(def), std::move(fact), std::move(dimensions));
  IntegrityReport report = wh.CheckIntegrity();
  if (!report.ok) {
    return Status::DataLoss("loaded warehouse failed integrity check:\n" +
                            report.ToString());
  }
  return wh;
}

std::string RecoveryReport::ToString() const {
  std::string out = StrFormat(
      "recovered generation %llu from %s",
      static_cast<unsigned long long>(seq), snapshot_file.c_str());
  if (!manifest_intact) out += " (MANIFEST was unreadable)";
  if (used_fallback) out += " (fell back past a corrupt snapshot)";
  out += StrFormat(
      "\njournal: %zu records (%zu rows) applied",
      journal_records_applied, journal_rows_applied);
  if (!journal_corruption.empty()) {
    out += StrFormat(
        "; dropped %zu records / %llu bytes (%s)%s",
        journal_records_dropped,
        static_cast<unsigned long long>(journal_bytes_dropped),
        journal_corruption.c_str(),
        journal_truncated ? ", tail truncated" : "");
  }
  for (const std::string& skipped : skipped_snapshots) {
    out += "\nskipped: " + skipped;
  }
  return out;
}

Result<DurableWarehouseStore> DurableWarehouseStore::Open(
    std::string dir, DurabilityOptions options) {
  if (options.keep_snapshots < 1) {
    return Status::InvalidArgument("keep_snapshots must be >= 1");
  }
  if (!FileExists(dir)) {
    return Status::NotFound("store directory '" + dir + "' does not exist");
  }
  DurableWarehouseStore store(std::move(dir), options);
  DDGMS_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                         ListDirectory(store.dir_));
  for (const std::string& name : entries) {
    store.max_seq_seen_ = std::max(
        store.max_seq_seen_,
        GenerationFromName(name, "snapshot-", ".ddws"));
  }
  if (FileExists(store.ManifestPath())) {
    auto text = ReadFileBinary(store.ManifestPath());
    auto manifest =
        text.ok() ? ParseManifest(text.value()) : text.status();
    if (manifest.ok()) {
      store.seq_ = manifest.value().seq;
    } else {
      store.manifest_error_ = manifest.status().ToString();
    }
  }
  store.max_seq_seen_ = std::max(store.max_seq_seen_, store.seq_);
  return store;
}

std::string DurableWarehouseStore::SnapshotPath(uint64_t seq) const {
  return dir_ + StrFormat("/snapshot-%06llu.ddws",
                          static_cast<unsigned long long>(seq));
}

std::string DurableWarehouseStore::JournalPath(uint64_t seq) const {
  return dir_ + StrFormat("/journal-%06llu.wal",
                          static_cast<unsigned long long>(seq));
}

std::string DurableWarehouseStore::ManifestPath() const {
  return dir_ + "/MANIFEST";
}

Status DurableWarehouseStore::WriteManifest() {
  DDGMS_FAULT_POINT("persist.manifest.write");
  std::string snapshot_name = SnapshotPath(seq_).substr(dir_.size() + 1);
  std::string journal_name = JournalPath(seq_).substr(dir_.size() + 1);
  return WriteFileDurable(ManifestPath(),
                          FormatManifest(seq_, snapshot_name, journal_name),
                          options_.sync);
}

void DurableWarehouseStore::PruneGenerations() {
  auto entries = ListDirectory(dir_);
  if (!entries.ok()) return;
  for (const std::string& name : entries.value()) {
    // Leftover temp files from a commit that crashed mid-write.
    if (EndsWith(name, ".tmp")) {
      (void)RemoveFileIfExists(dir_ + "/" + name);
      continue;
    }
    uint64_t generation =
        std::max(GenerationFromName(name, "snapshot-", ".ddws"),
                 GenerationFromName(name, "journal-", ".wal"));
    if (generation != 0 &&
        generation + static_cast<uint64_t>(options_.keep_snapshots) <=
            seq_) {
      (void)RemoveFileIfExists(dir_ + "/" + name);
    }
  }
}

Status DurableWarehouseStore::OpenJournal() {
  DDGMS_ASSIGN_OR_RETURN(JournalWriter writer,
                         JournalWriter::Open(JournalPath(seq_)));
  journal_ = std::move(writer);
  return Status::OK();
}

Status DurableWarehouseStore::CommitSnapshot(const Warehouse& wh) {
  DDGMS_FAULT_POINT("persist.commit");
  ScopedLatencyTimer timer("ddgms.persist.commit_latency_us");
  const uint64_t previous_seq = seq_;
  const uint64_t next = max_seq_seen_ + 1;
  // The old journal stays untouched until the MANIFEST swap commits
  // the new generation; only the writer handle is released.
  journal_.reset();
  DDGMS_RETURN_IF_ERROR(
      WriteSnapshotFile(wh, SnapshotPath(next), options_.sync));
  DDGMS_ASSIGN_OR_RETURN(JournalWriter writer,
                         JournalWriter::Open(JournalPath(next)));
  max_seq_seen_ = next;
  seq_ = next;
  Status manifest_status = WriteManifest();
  if (!manifest_status.ok()) {
    // The swap did not happen: the previous generation is still the
    // durable truth.
    seq_ = previous_seq;
    return manifest_status;
  }
  manifest_error_.clear();
  journal_ = std::move(writer);
  PruneGenerations();
  DDGMS_METRIC_INC("ddgms.persist.commits");
  DDGMS_LOG_INFO("persist.commit")
      .With("seq", seq_)
      .With("fact_rows", wh.num_fact_rows())
      .With("dir", dir_);
  return Status::OK();
}

Status DurableWarehouseStore::AppendBatch(const Table& batch) {
  if (!journal_.has_value()) {
    return Status::FailedPrecondition(
        "no current generation: CommitSnapshot, Load or Recover first");
  }
  DDGMS_RETURN_IF_ERROR(journal_->AppendBatch(batch, options_.sync));
  DDGMS_METRIC_INC("ddgms.persist.journal_appends");
  DDGMS_METRIC_ADD("ddgms.persist.journal_rows", batch.num_rows());
  return Status::OK();
}

Result<Warehouse> DurableWarehouseStore::ApplyJournal(
    Warehouse wh, uint64_t seq, bool strict, RecoveryReport* report) {
  const std::string journal_path = JournalPath(seq);
  std::vector<Table> batches;
  DDGMS_ASSIGN_OR_RETURN(
      JournalReplayStats stats,
      ReplayJournal(journal_path, [&](Table batch, size_t) {
        batches.push_back(std::move(batch));
        return Status::OK();
      }));
  if (strict && !stats.clean()) {
    return Status::DataLoss("journal '" + journal_path +
                            "' is corrupt: " + stats.corruption +
                            "; use recovery to salvage the intact prefix");
  }
  size_t applied = 0;
  size_t rows = 0;
  Status apply_failure = Status::OK();
  for (; applied < batches.size(); ++applied) {
    Status st = wh.AppendRows(batches[applied]);
    if (!st.ok()) {
      apply_failure = std::move(st);
      break;
    }
    rows += batches[applied].num_rows();
  }
  if (!apply_failure.ok()) {
    if (strict) {
      return Status::DataLoss(
          StrFormat("journal '%s' record %zu does not apply: %s",
                    journal_path.c_str(), applied,
                    apply_failure.ToString().c_str()));
    }
    // AppendRows may have mutated the warehouse partway through the
    // rejected batch — reload the snapshot and replay only the prefix
    // that is known to apply cleanly.
    DDGMS_ASSIGN_OR_RETURN(wh, ReadSnapshotFile(SnapshotPath(seq)));
    rows = 0;
    for (size_t i = 0; i < applied; ++i) {
      DDGMS_RETURN_IF_ERROR(wh.AppendRows(batches[i]));
      rows += batches[i].num_rows();
    }
    stats.corruption =
        StrFormat("record %zu rejected by warehouse replay: %s", applied,
                  apply_failure.ToString().c_str());
    stats.valid_bytes =
        applied == 0 ? 0 : stats.record_end_offsets[applied - 1];
    auto file_size = FileSize(journal_path);
    stats.dropped_bytes =
        file_size.ok() ? file_size.value() - stats.valid_bytes : 0;
  }
  if (report != nullptr) {
    report->journal_records_applied = applied;
    report->journal_rows_applied = rows;
    report->journal_corruption = stats.corruption;
    report->journal_records_dropped = batches.size() - applied;
    report->journal_bytes_dropped = stats.dropped_bytes;
  }
  if (!stats.clean()) {
    // Cut the unusable tail so future appends extend a valid journal.
    Status truncate_status = TruncateJournalTail(journal_path, stats);
    if (report != nullptr) report->journal_truncated = truncate_status.ok();
    DDGMS_METRIC_INC("ddgms.persist.journal_truncations");
    DDGMS_LOG_WARN("persist.journal_truncated")
        .With("journal", journal_path)
        .With("valid_bytes", stats.valid_bytes)
        .With("dropped_bytes", stats.dropped_bytes)
        .With("why", stats.corruption);
  }
  return wh;
}

Result<Warehouse> DurableWarehouseStore::Load() {
  DDGMS_FAULT_POINT("persist.load");
  ScopedLatencyTimer timer("ddgms.persist.load_latency_us");
  if (!manifest_error_.empty()) {
    return Status::DataLoss("MANIFEST of '" + dir_ +
                            "' is unreadable: " + manifest_error_ +
                            "; use recovery");
  }
  if (seq_ == 0) {
    return Status::NotFound("no durable snapshot in '" + dir_ + "'");
  }
  DDGMS_ASSIGN_OR_RETURN(Warehouse wh, ReadSnapshotFile(SnapshotPath(seq_)));
  DDGMS_ASSIGN_OR_RETURN(
      wh, ApplyJournal(std::move(wh), seq_, /*strict=*/true, nullptr));
  DDGMS_RETURN_IF_ERROR(OpenJournal());
  DDGMS_METRIC_INC("ddgms.persist.loads");
  return wh;
}

Result<Warehouse> DurableWarehouseStore::Recover(RecoveryReport* report) {
  DDGMS_FAULT_POINT("persist.recover");
  if (report == nullptr) {
    return Status::InvalidArgument("recovery requires a report out-param");
  }
  *report = RecoveryReport{};
  ScopedLatencyTimer timer("ddgms.persist.recover_latency_us");
  DDGMS_METRIC_INC("ddgms.persist.recoveries");
  report->manifest_intact = manifest_error_.empty();

  // Candidate generations, newest first. With an intact MANIFEST only
  // its generation and older ones count — a newer on-disk snapshot is
  // an unacknowledged commit that never became the durable truth.
  std::vector<uint64_t> candidates;
  DDGMS_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                         ListDirectory(dir_));
  for (const std::string& name : entries) {
    uint64_t generation = GenerationFromName(name, "snapshot-", ".ddws");
    if (generation == 0) continue;
    if (report->manifest_intact && generation > seq_) continue;
    candidates.push_back(generation);
  }
  std::sort(candidates.begin(), candidates.end(),
            std::greater<uint64_t>());
  if (candidates.empty()) {
    return Status::DataLoss("no snapshot generations found in '" + dir_ +
                            "'");
  }

  for (uint64_t candidate : candidates) {
    const std::string snapshot_path = SnapshotPath(candidate);
    auto base = ReadSnapshotFile(snapshot_path);
    if (!base.ok()) {
      report->skipped_snapshots.push_back(
          snapshot_path + ": " + base.status().ToString());
      DDGMS_METRIC_INC("ddgms.persist.snapshots_skipped");
      continue;
    }
    auto recovered = ApplyJournal(std::move(base).value(), candidate,
                                  /*strict=*/false, report);
    if (!recovered.ok()) {
      report->skipped_snapshots.push_back(
          snapshot_path + ": journal replay failed: " +
          recovered.status().ToString());
      DDGMS_METRIC_INC("ddgms.persist.snapshots_skipped");
      continue;
    }
    report->seq = candidate;
    report->snapshot_file = snapshot_path;
    report->used_fallback = candidate != candidates.front();
    seq_ = candidate;
    // Re-point the MANIFEST at what actually recovered, so the next
    // Load agrees with what this process salvaged.
    DDGMS_RETURN_IF_ERROR(WriteManifest());
    manifest_error_.clear();
    DDGMS_RETURN_IF_ERROR(OpenJournal());
    DDGMS_LOG(report->clean() ? LogLevel::kInfo : LogLevel::kWarn,
              "persist.recover")
        .With("seq", seq_)
        .With("journal_records", report->journal_records_applied)
        .With("dropped_bytes", report->journal_bytes_dropped)
        .With("used_fallback", report->used_fallback ? 1 : 0);
    return recovered;
  }
  std::string detail = Join(report->skipped_snapshots, "; ");
  return Status::DataLoss("all snapshot generations in '" + dir_ +
                          "' are unreadable: " + detail);
}

}  // namespace ddgms::warehouse
