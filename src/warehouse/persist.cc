#include "warehouse/persist.h"

#include <vector>

#include "common/csv.h"
#include "common/strings.h"

namespace ddgms::warehouse {

namespace {

Result<DataType> DataTypeFromName(const std::string& name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int64") return DataType::kInt64;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  if (name == "date") return DataType::kDate;
  return Status::ParseError("unknown data type '" + name + "'");
}

Status WriteTableWithMeta(const Table& table, const std::string& base) {
  DDGMS_RETURN_IF_ERROR(WriteFile(base + ".csv", table.ToCsv()));
  std::string meta;
  for (const Field& f : table.schema().fields()) {
    meta += f.name;
    meta += ":";
    meta += DataTypeName(f.type);
    meta += "\n";
  }
  return WriteFile(base + ".meta", meta);
}

Result<Table> ReadTableWithMeta(const std::string& base) {
  DDGMS_ASSIGN_OR_RETURN(std::string meta, ReadFile(base + ".meta"));
  CsvReadOptions options;
  for (const std::string& line : Split(meta, '\n')) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    size_t colon = trimmed.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("bad meta line '" + trimmed + "' in " +
                                base + ".meta");
    }
    DDGMS_ASSIGN_OR_RETURN(DataType type,
                           DataTypeFromName(trimmed.substr(colon + 1)));
    options.column_types.push_back(type);
  }
  return Table::FromCsvFile(base + ".csv", options);
}

std::string SerializeSchemaDef(const StarSchemaDef& def) {
  std::string out;
  out += "fact " + def.fact_name + "\n";
  if (!def.degenerate_key.empty()) {
    out += "degenerate " + def.degenerate_key + "\n";
  }
  for (const MeasureDef& m : def.measures) {
    out += "measure " + m.name + " " + m.source_column + "\n";
  }
  for (const DimensionDef& dim : def.dimensions) {
    out += "dimension " + dim.name + "\n";
    for (const std::string& attr : dim.attributes) {
      out += "attr " + attr + "\n";
    }
    for (const Hierarchy& h : dim.hierarchies) {
      out += "hierarchy " + h.name;
      for (const std::string& level : h.levels) {
        out += " " + level;
      }
      out += "\n";
    }
  }
  return out;
}

Result<StarSchemaDef> ParseSchemaDef(const std::string& text) {
  StarSchemaDef def;
  DimensionDef* current = nullptr;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string line(Trim(raw_line));
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, ' ');
    const std::string& kind = parts[0];
    if (kind == "fact" && parts.size() == 2) {
      def.fact_name = parts[1];
    } else if (kind == "degenerate" && parts.size() == 2) {
      def.degenerate_key = parts[1];
    } else if (kind == "measure" && parts.size() == 3) {
      def.measures.push_back(MeasureDef{parts[1], parts[2]});
    } else if (kind == "dimension" && parts.size() == 2) {
      def.dimensions.push_back(DimensionDef{parts[1], {}, {}});
      current = &def.dimensions.back();
    } else if (kind == "attr" && parts.size() == 2) {
      if (current == nullptr) {
        return Status::ParseError("attr before dimension in schema.txt");
      }
      current->attributes.push_back(parts[1]);
    } else if (kind == "hierarchy" && parts.size() >= 4) {
      if (current == nullptr) {
        return Status::ParseError(
            "hierarchy before dimension in schema.txt");
      }
      Hierarchy h;
      h.name = parts[1];
      h.levels.assign(parts.begin() + 2, parts.end());
      current->hierarchies.push_back(std::move(h));
    } else {
      return Status::ParseError("bad schema.txt line: '" + line + "'");
    }
  }
  DDGMS_RETURN_IF_ERROR(def.Validate());
  return def;
}

}  // namespace

Status SaveWarehouse(const Warehouse& wh, const std::string& dir) {
  DDGMS_RETURN_IF_ERROR(
      WriteFile(dir + "/schema.txt", SerializeSchemaDef(wh.def())));
  DDGMS_RETURN_IF_ERROR(WriteTableWithMeta(wh.fact(), dir + "/fact"));
  for (const Dimension& dim : wh.dimensions()) {
    DDGMS_RETURN_IF_ERROR(
        WriteTableWithMeta(dim.table(), dir + "/dim_" + dim.name()));
  }
  return Status::OK();
}

Result<Warehouse> LoadWarehouse(const std::string& dir) {
  DDGMS_ASSIGN_OR_RETURN(std::string schema_text,
                         ReadFile(dir + "/schema.txt"));
  DDGMS_ASSIGN_OR_RETURN(StarSchemaDef def, ParseSchemaDef(schema_text));
  DDGMS_ASSIGN_OR_RETURN(Table fact, ReadTableWithMeta(dir + "/fact"));
  std::vector<Dimension> dimensions;
  dimensions.reserve(def.dimensions.size());
  for (const DimensionDef& dim_def : def.dimensions) {
    DDGMS_ASSIGN_OR_RETURN(Table dim_table,
                           ReadTableWithMeta(dir + "/dim_" + dim_def.name));
    dimensions.emplace_back(dim_def, std::move(dim_table));
  }
  Warehouse wh(std::move(def), std::move(fact), std::move(dimensions));
  IntegrityReport report = wh.CheckIntegrity();
  if (!report.ok) {
    return Status::DataLoss("loaded warehouse failed integrity check:\n" +
                            report.ToString());
  }
  return wh;
}

}  // namespace ddgms::warehouse
