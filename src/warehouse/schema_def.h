#ifndef DDGMS_WAREHOUSE_SCHEMA_DEF_H_
#define DDGMS_WAREHOUSE_SCHEMA_DEF_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ddgms::warehouse {

/// An attribute hierarchy inside a dimension, ordered coarse -> fine
/// (e.g. {"AgeBand10", "AgeBand5", "Age"}). Drill-down walks toward the
/// fine end; roll-up toward the coarse end. Every level must be an
/// attribute of the owning dimension, and each fine value must determine
/// its coarse value (validated at build time).
struct Hierarchy {
  std::string name;
  std::vector<std::string> levels;
};

/// One dimension of the star schema: a named group of source columns
/// (e.g. the paper's FastingBloods dimension holding FBG bands, HbA1c
/// bands, cholesterol bands).
struct DimensionDef {
  std::string name;
  std::vector<std::string> attributes;  // source column names
  std::vector<Hierarchy> hierarchies;
};

/// One numeric measure stored in the fact table.
struct MeasureDef {
  std::string name;           // measure name in the warehouse
  std::string source_column;  // numeric column in the source extract
};

/// Full star-schema declaration: fact table name, measures, dimensions
/// (paper Fig 3: fact MedicalMeasures + 8 dimensions).
struct StarSchemaDef {
  std::string fact_name;
  std::vector<MeasureDef> measures;
  std::vector<DimensionDef> dimensions;
  /// Optional degenerate key: a source column (e.g. RecordId) carried in
  /// the fact table verbatim for traceability.
  std::string degenerate_key;

  /// Structural validation: non-empty names, unique dimension names,
  /// hierarchy levels subset of attributes.
  Status Validate() const;

  /// Index of a dimension by name.
  Result<size_t> DimensionIndex(const std::string& name) const;
};

/// Text serialization of a schema declaration (the schema.txt format
/// shared by the CSV persist directory and the binary snapshot's
/// schema section): one "fact/degenerate/measure/dimension/attr/
/// hierarchy" record per line.
std::string SerializeSchemaDef(const StarSchemaDef& def);

/// Inverse of SerializeSchemaDef; validates the parsed definition.
Result<StarSchemaDef> ParseSchemaDef(const std::string& text);

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_SCHEMA_DEF_H_
