#include "warehouse/schema_def.h"

#include <set>
#include <unordered_set>

#include "common/strings.h"

namespace ddgms::warehouse {

Status StarSchemaDef::Validate() const {
  if (fact_name.empty()) {
    return Status::InvalidArgument("fact table must be named");
  }
  if (dimensions.empty()) {
    return Status::InvalidArgument("star schema needs >= 1 dimension");
  }
  std::set<std::string> dim_names;
  for (const DimensionDef& dim : dimensions) {
    if (dim.name.empty()) {
      return Status::InvalidArgument("dimension must be named");
    }
    if (!dim_names.insert(dim.name).second) {
      return Status::AlreadyExists("duplicate dimension '" + dim.name +
                                   "'");
    }
    if (dim.attributes.empty()) {
      return Status::InvalidArgument("dimension '" + dim.name +
                                     "' has no attributes");
    }
    std::unordered_set<std::string> attrs(dim.attributes.begin(),
                                          dim.attributes.end());
    if (attrs.size() != dim.attributes.size()) {
      return Status::AlreadyExists("dimension '" + dim.name +
                                   "' has duplicate attributes");
    }
    for (const Hierarchy& h : dim.hierarchies) {
      if (h.levels.size() < 2) {
        return Status::InvalidArgument(
            "hierarchy '" + h.name + "' in dimension '" + dim.name +
            "' needs >= 2 levels");
      }
      for (const std::string& level : h.levels) {
        if (attrs.find(level) == attrs.end()) {
          return Status::NotFound("hierarchy '" + h.name + "' level '" +
                                  level + "' is not an attribute of '" +
                                  dim.name + "'");
        }
      }
    }
  }
  std::set<std::string> measure_names;
  for (const MeasureDef& m : measures) {
    if (m.name.empty() || m.source_column.empty()) {
      return Status::InvalidArgument("measure must have name and source");
    }
    if (!measure_names.insert(m.name).second) {
      return Status::AlreadyExists("duplicate measure '" + m.name + "'");
    }
  }
  return Status::OK();
}

Result<size_t> StarSchemaDef::DimensionIndex(const std::string& name) const {
  for (size_t i = 0; i < dimensions.size(); ++i) {
    if (dimensions[i].name == name) return i;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

std::string SerializeSchemaDef(const StarSchemaDef& def) {
  std::string out;
  out += "fact " + def.fact_name + "\n";
  if (!def.degenerate_key.empty()) {
    out += "degenerate " + def.degenerate_key + "\n";
  }
  for (const MeasureDef& m : def.measures) {
    out += "measure " + m.name + " " + m.source_column + "\n";
  }
  for (const DimensionDef& dim : def.dimensions) {
    out += "dimension " + dim.name + "\n";
    for (const std::string& attr : dim.attributes) {
      out += "attr " + attr + "\n";
    }
    for (const Hierarchy& h : dim.hierarchies) {
      out += "hierarchy " + h.name;
      for (const std::string& level : h.levels) {
        out += " " + level;
      }
      out += "\n";
    }
  }
  return out;
}

Result<StarSchemaDef> ParseSchemaDef(const std::string& text) {
  StarSchemaDef def;
  DimensionDef* current = nullptr;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string line(Trim(raw_line));
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, ' ');
    const std::string& kind = parts[0];
    if (kind == "fact" && parts.size() == 2) {
      def.fact_name = parts[1];
    } else if (kind == "degenerate" && parts.size() == 2) {
      def.degenerate_key = parts[1];
    } else if (kind == "measure" && parts.size() == 3) {
      def.measures.push_back(MeasureDef{parts[1], parts[2]});
    } else if (kind == "dimension" && parts.size() == 2) {
      def.dimensions.push_back(DimensionDef{parts[1], {}, {}});
      current = &def.dimensions.back();
    } else if (kind == "attr" && parts.size() == 2) {
      if (current == nullptr) {
        return Status::ParseError("attr before dimension in schema text");
      }
      current->attributes.push_back(parts[1]);
    } else if (kind == "hierarchy" && parts.size() >= 4) {
      if (current == nullptr) {
        return Status::ParseError(
            "hierarchy before dimension in schema text");
      }
      Hierarchy h;
      h.name = parts[1];
      h.levels.assign(parts.begin() + 2, parts.end());
      current->hierarchies.push_back(std::move(h));
    } else {
      return Status::ParseError("bad schema text line: '" + line + "'");
    }
  }
  DDGMS_RETURN_IF_ERROR(def.Validate());
  return def;
}

}  // namespace ddgms::warehouse
