#include "warehouse/schema_def.h"

#include <set>
#include <unordered_set>

namespace ddgms::warehouse {

Status StarSchemaDef::Validate() const {
  if (fact_name.empty()) {
    return Status::InvalidArgument("fact table must be named");
  }
  if (dimensions.empty()) {
    return Status::InvalidArgument("star schema needs >= 1 dimension");
  }
  std::set<std::string> dim_names;
  for (const DimensionDef& dim : dimensions) {
    if (dim.name.empty()) {
      return Status::InvalidArgument("dimension must be named");
    }
    if (!dim_names.insert(dim.name).second) {
      return Status::AlreadyExists("duplicate dimension '" + dim.name +
                                   "'");
    }
    if (dim.attributes.empty()) {
      return Status::InvalidArgument("dimension '" + dim.name +
                                     "' has no attributes");
    }
    std::unordered_set<std::string> attrs(dim.attributes.begin(),
                                          dim.attributes.end());
    if (attrs.size() != dim.attributes.size()) {
      return Status::AlreadyExists("dimension '" + dim.name +
                                   "' has duplicate attributes");
    }
    for (const Hierarchy& h : dim.hierarchies) {
      if (h.levels.size() < 2) {
        return Status::InvalidArgument(
            "hierarchy '" + h.name + "' in dimension '" + dim.name +
            "' needs >= 2 levels");
      }
      for (const std::string& level : h.levels) {
        if (attrs.find(level) == attrs.end()) {
          return Status::NotFound("hierarchy '" + h.name + "' level '" +
                                  level + "' is not an attribute of '" +
                                  dim.name + "'");
        }
      }
    }
  }
  std::set<std::string> measure_names;
  for (const MeasureDef& m : measures) {
    if (m.name.empty() || m.source_column.empty()) {
      return Status::InvalidArgument("measure must have name and source");
    }
    if (!measure_names.insert(m.name).second) {
      return Status::AlreadyExists("duplicate measure '" + m.name + "'");
    }
  }
  return Status::OK();
}

Result<size_t> StarSchemaDef::DimensionIndex(const std::string& name) const {
  for (size_t i = 0; i < dimensions.size(); ++i) {
    if (dimensions[i].name == name) return i;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

}  // namespace ddgms::warehouse
