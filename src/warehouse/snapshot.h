#ifndef DDGMS_WAREHOUSE_SNAPSHOT_H_
#define DDGMS_WAREHOUSE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "table/table.h"
#include "warehouse/warehouse.h"

namespace ddgms::warehouse {

/// -------------------------------------------------------------------
/// Binary columnar snapshot format (.ddws)
///
/// One self-contained file holding a whole warehouse, replacing the
/// lossy CSV round-trip for durable storage. Layout:
///
///   header   "DDWSNAP1" magic, u32 version, u32 section count,
///            u32 masked CRC32C of the preceding header bytes
///   section* u8 kind, length-prefixed name, u64 payload length,
///            u32 masked CRC32C of payload, payload bytes
///
/// Section kinds: 1 = star-schema declaration (schema text), 2 = fact
/// table, 3 = dimension table (name = dimension name). Table payloads
/// are columnar: per column a length-prefixed name, a type tag, a
/// packed null bitmap, then a typed page — raw little-endian int64 /
/// IEEE-754 double / int32 day-count / byte bools, and length-prefixed
/// bytes for strings — so numeric values round-trip bit-exactly and
/// empty strings stay distinct from nulls (the documented CSV caveat
/// does not exist here).
///
/// Every reader verifies the header CRC before trusting the section
/// count and each section CRC before decoding the payload: torn
/// writes, short reads and bit flips all surface as DataLoss, never as
/// silently wrong data.
/// -------------------------------------------------------------------

inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Serializes one table as a columnar payload (shared with the
/// write-ahead journal, whose batch records carry the same encoding).
void EncodeTable(const Table& table, std::string* out);

/// Decodes a columnar table payload; DataLoss on truncation, ParseError
/// on malformed structure.
Result<Table> DecodeTable(std::string_view bytes);

/// Serializes a whole warehouse into a snapshot image.
std::string EncodeSnapshot(const Warehouse& wh);

/// Parses and CRC-verifies a snapshot image, then re-checks warehouse
/// integrity (foreign keys, hierarchies) before returning it.
Result<Warehouse> DecodeSnapshot(std::string_view bytes);

/// Writes a snapshot atomically (temp file + fsync + rename; see
/// WriteFileDurable). After a crash, `path` is either absent, the old
/// snapshot, or the complete new one.
Status WriteSnapshotFile(const Warehouse& wh, const std::string& path,
                         bool sync = true);

/// Reads and fully verifies a snapshot file.
Result<Warehouse> ReadSnapshotFile(const std::string& path);

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_SNAPSHOT_H_
