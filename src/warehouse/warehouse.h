#ifndef DDGMS_WAREHOUSE_WAREHOUSE_H_
#define DDGMS_WAREHOUSE_WAREHOUSE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/quarantine.h"
#include "common/result.h"
#include "table/table.h"
#include "warehouse/schema_def.h"

namespace ddgms::warehouse {

/// Process-wide monotonic stamp source for Warehouse::generation().
/// Starts at 1, so 0 is a safe "never seen" sentinel for caches.
uint64_t NextWarehouseGeneration();

/// A populated dimension table: surrogate keys 0..n-1 (the row index)
/// plus one column per attribute. Member rows are unique attribute
/// tuples.
class Dimension {
 public:
  Dimension(DimensionDef def, Table table)
      : def_(std::move(def)), table_(std::move(table)) {}

  const DimensionDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }
  const Table& table() const { return table_; }
  size_t num_members() const { return table_.num_rows(); }

  /// Value of `attribute` for surrogate key `key`.
  Result<Value> AttributeValue(int64_t key,
                               const std::string& attribute) const;

  /// True if `attribute` exists in this dimension.
  bool HasAttribute(const std::string& attribute) const;

  /// The hierarchy containing `attribute`, if any (first match).
  const Hierarchy* HierarchyOf(const std::string& attribute) const;

  /// The next-finer / next-coarser level relative to `attribute` inside
  /// its hierarchy; NotFound when at the end or not in a hierarchy.
  Result<std::string> FinerLevel(const std::string& attribute) const;
  Result<std::string> CoarserLevel(const std::string& attribute) const;

  /// Appends a derived attribute computed from existing member
  /// attributes (used for knowledge-base feedback attributes).
  Status AddDerivedAttribute(
      const std::string& attribute, DataType type,
      const std::function<Value(const Dimension&, int64_t key)>& fn);

 private:
  friend class StarSchemaBuilder;
  friend class Warehouse;  // incremental AppendRows extends members

  DimensionDef def_;
  Table table_;
};

/// Key-integrity summary produced by CheckIntegrity().
struct IntegrityReport {
  bool ok = true;
  size_t fact_rows = 0;
  std::vector<std::string> violations;

  std::string ToString() const;
};

/// A populated star schema: the fact table (one foreign-key column
/// "<Dimension>_key" per dimension, plus measures and the optional
/// degenerate key) and its dimension tables. This is the intermediary
/// layer of the DD-DGMS — every downstream feature (OLAP, prediction,
/// analytics, optimisation) reads from here.
class Warehouse {
 public:
  Warehouse(StarSchemaDef def, Table fact, std::vector<Dimension> dims)
      : def_(std::move(def)),
        fact_(std::move(fact)),
        dimensions_(std::move(dims)) {}

  const StarSchemaDef& def() const { return def_; }
  const Table& fact() const { return fact_; }
  size_t num_fact_rows() const { return fact_.num_rows(); }
  const std::vector<Dimension>& dimensions() const { return dimensions_; }

  /// Monotonic change stamp: a fresh value is assigned at construction
  /// and after every mutating operation (AppendRows,
  /// AddFeedbackDimension), and travels with move-assignment, so a
  /// rebuilt/reloaded/recovered warehouse never repeats a stamp.
  /// Caches key on this instead of the fact-row count — it catches a
  /// reload that happens to restore the same number of rows.
  uint64_t generation() const { return generation_; }

  /// Dimension lookup by name.
  Result<const Dimension*> dimension(const std::string& name) const;
  Result<Dimension*> mutable_dimension(const std::string& name);

  /// Name of the fact foreign-key column for a dimension.
  static std::string KeyColumnName(const std::string& dimension_name) {
    return dimension_name + "_key";
  }

  /// Surrogate key of `dimension_name` for fact row `fact_row`.
  Result<int64_t> FactKey(size_t fact_row,
                          const std::string& dimension_name) const;

  /// Finds which dimension owns `attribute`; error if none or ambiguous
  /// hits are resolved to the first declaring dimension.
  Result<const Dimension*> DimensionOfAttribute(
      const std::string& attribute) const;

  /// Materializes fact rows joined with the given dimension attributes
  /// (plus all measures). Used to hand cube subsets to the mining layer.
  Result<Table> JoinedView(const std::vector<std::string>& attributes) const;

  /// Registers a feedback dimension (paper: "further dimensions are
  /// introduced to capture user feedback"): `labeler` assigns each fact
  /// row a label; distinct labels become dimension members and the fact
  /// table gains the corresponding key column.
  Status AddFeedbackDimension(
      const std::string& dimension_name, const std::string& attribute,
      const std::function<Value(const Warehouse&, size_t fact_row)>&
          labeler);

  /// Incremental load: appends transformed source rows to the fact
  /// table, reusing existing dimension members and appending new ones
  /// (avoids the full rebuild of StarSchemaBuilder on data
  /// acquisition). The source must carry every column the schema
  /// definition references. Derived/feedback attributes added after the
  /// original build are not supported here (AlreadyExists-style schema
  /// drift surfaces as an error from the tuple lookup).
  Status AppendRows(const Table& source);

  /// Verifies foreign keys are in range and hierarchies are functional
  /// (each fine member maps to exactly one coarse member).
  IntegrityReport CheckIntegrity() const;

 private:
  StarSchemaDef def_;
  Table fact_;
  std::vector<Dimension> dimensions_;
  uint64_t generation_ = NextWarehouseGeneration();
};

/// How StarSchemaBuilder reacts to source rows that cannot be wired
/// into the star schema.
struct BuildOptions {
  /// kStrict (default): historical behaviour — any failure aborts the
  /// build. kLenient: source rows that would violate referential
  /// integrity (a dimension tuple that is null in every attribute
  /// references no member; partially-null tuples remain valid members)
  /// or whose fact row cannot be appended are quarantined under stage
  /// "star-schema" (1-based source row numbers) and the build
  /// continues with the rest.
  ErrorMode error_mode = ErrorMode::kStrict;
  /// Sink for lenient-mode quarantined rows; may be null (rows are
  /// still skipped, not itemised).
  QuarantineReport* quarantine = nullptr;
};

/// Populates a Warehouse from a transformed source extract. Each source
/// row becomes one fact row; each dimension's attribute tuple is
/// deduplicated into the dimension table.
class StarSchemaBuilder {
 public:
  explicit StarSchemaBuilder(StarSchemaDef def) : def_(std::move(def)) {}

  /// Builds and integrity-checks the warehouse (strict).
  Result<Warehouse> Build(const Table& source) const {
    return Build(source, {});
  }

  /// Builds with explicit robustness semantics (see BuildOptions).
  Result<Warehouse> Build(const Table& source,
                          const BuildOptions& options) const;

 private:
  StarSchemaDef def_;
};

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_WAREHOUSE_H_
