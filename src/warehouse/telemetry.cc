#include "warehouse/telemetry.h"

#include <string_view>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ddgms::warehouse {

namespace {

Table MakeStagingTable(std::vector<Field> fields) {
  Result<Schema> schema = Schema::Make(std::move(fields));
  // Static schemas with unique field names never fail.
  return Table(std::move(schema).value());
}

}  // namespace

std::string TelemetrySampleStats::ToString() const {
  return StrFormat(
      "sample #%lld: %zu metric rows, %zu spans, %zu events",
      static_cast<long long>(snapshot), metric_rows, span_rows,
      event_rows);
}

TelemetrySampler::TelemetrySampler()
    : metric_samples_(MakeStagingTable({{"Snapshot", DataType::kInt64},
                                        {"Kind", DataType::kString},
                                        {"Layer", DataType::kString},
                                        {"Name", DataType::kString},
                                        {"Value", DataType::kDouble}})),
      span_facts_(MakeStagingTable({{"Snapshot", DataType::kInt64},
                                    {"Layer", DataType::kString},
                                    {"Name", DataType::kString},
                                    {"SpanId", DataType::kInt64},
                                    {"ParentSpanId", DataType::kInt64},
                                    {"StartUs", DataType::kInt64},
                                    {"DurationUs", DataType::kDouble}})),
      event_facts_(MakeStagingTable({{"Snapshot", DataType::kInt64},
                                     {"Layer", DataType::kString},
                                     {"Name", DataType::kString},
                                     {"Severity", DataType::kString},
                                     {"SpanId", DataType::kInt64},
                                     {"TimeUs", DataType::kInt64}})) {}

std::string TelemetrySampler::LayerOf(const std::string& name) {
  std::string_view rest(name);
  constexpr std::string_view kPrefix = "ddgms.";
  if (rest.substr(0, kPrefix.size()) == kPrefix) {
    rest.remove_prefix(kPrefix.size());
  }
  const size_t end = rest.find_first_of(".:");
  std::string layer(rest.substr(0, end));
  return layer.empty() ? "other" : layer;
}

Result<TelemetrySampleStats> TelemetrySampler::Sample() {
  TelemetrySampleStats stats;
  ScopedAccounting accounting("telemetry");
  {
    MutexLock lock(mu_);
    stats.snapshot = next_snapshot_++;
    const Value snap = Value::Int(stats.snapshot);

    // Refresh the resource-pool gauges so attribution rides into the
    // same snapshot as every other instrument.
    if (ResourceMeter::Enabled()) {
      ResourceMeter::Global().PublishToMetrics();
    }

    // Metrics are cumulative: re-read the full registry every sample so
    // consecutive snapshots show each instrument's trajectory.
    const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
    for (const MetricsSnapshot::CounterValue& c : metrics.counters) {
      DDGMS_RETURN_IF_ERROR(metric_samples_.AppendRow(
          {snap, Value::Str("counter"), Value::Str(LayerOf(c.name)),
           Value::Str(c.name),
           Value::Real(static_cast<double>(c.value))}));
      ++stats.metric_rows;
    }
    for (const MetricsSnapshot::GaugeValue& g : metrics.gauges) {
      DDGMS_RETURN_IF_ERROR(metric_samples_.AppendRow(
          {snap, Value::Str("gauge"), Value::Str(LayerOf(g.name)),
           Value::Str(g.name), Value::Real(g.value)}));
      ++stats.metric_rows;
    }
    for (const HistogramSnapshot& h : metrics.histograms) {
      DDGMS_RETURN_IF_ERROR(metric_samples_.AppendRow(
          {snap, Value::Str("histogram"), Value::Str(LayerOf(h.name)),
           Value::Str(h.name), Value::Real(h.Mean())}));
      ++stats.metric_rows;
    }

    // Spans and events are consumed: Drain() atomically snapshots and
    // clears each ring, so every finished record lands in exactly one
    // sample.
    for (const SpanRecord& s : TraceCollector::Global().Drain()) {
      DDGMS_RETURN_IF_ERROR(span_facts_.AppendRow(
          {snap, Value::Str(LayerOf(s.name)), Value::Str(s.name),
           Value::Int(static_cast<int64_t>(s.id)),
           Value::Int(static_cast<int64_t>(s.parent_id)),
           Value::Int(static_cast<int64_t>(s.start_us)),
           Value::Real(static_cast<double>(s.duration_us))}));
      ++stats.span_rows;
    }
    for (const LogRecord& r : EventLog::Global().Drain()) {
      DDGMS_RETURN_IF_ERROR(event_facts_.AppendRow(
          {snap, Value::Str(LayerOf(r.event)), Value::Str(r.event),
           Value::Str(LogLevelName(r.level)),
           Value::Int(static_cast<int64_t>(r.span_id)),
           Value::Int(static_cast<int64_t>(r.time_us))}));
      ++stats.event_rows;
    }
  }
  // Self-observation, emitted after the drain on purpose: the sampler's
  // own metric and event surface in the NEXT snapshot.
  DDGMS_METRIC_INC("ddgms.telemetry.samples");
  DDGMS_METRIC_ADD("ddgms.telemetry.rows_staged",
                   stats.metric_rows + stats.span_rows + stats.event_rows);
  DDGMS_LOG_INFO("telemetry.sample")
      .With("snapshot", stats.snapshot)
      .With("metric_rows", stats.metric_rows)
      .With("span_rows", stats.span_rows)
      .With("event_rows", stats.event_rows);
  return stats;
}

Table TelemetrySampler::metric_samples() const {
  MutexLock lock(mu_);
  return metric_samples_;
}

Table TelemetrySampler::span_facts() const {
  MutexLock lock(mu_);
  return span_facts_;
}

Table TelemetrySampler::event_facts() const {
  MutexLock lock(mu_);
  return event_facts_;
}

int64_t TelemetrySampler::num_samples() const {
  MutexLock lock(mu_);
  return next_snapshot_ - 1;
}

size_t TelemetrySampler::num_rows() const {
  MutexLock lock(mu_);
  return metric_samples_.num_rows() + span_facts_.num_rows() +
         event_facts_.num_rows();
}

StarSchemaDef TelemetrySampler::TelemetrySchemaDef() {
  StarSchemaDef def;
  def.fact_name = "Telemetry";
  def.measures.push_back(MeasureDef{"Value", "Value"});
  def.dimensions.push_back(DimensionDef{"SampleTime", {"Snapshot"}, {}});
  def.dimensions.push_back(DimensionDef{
      "Instrument",
      {"Layer", "Name"},
      {Hierarchy{"instrument", {"Layer", "Name"}}}});
  def.dimensions.push_back(DimensionDef{"Kind", {"Kind"}, {}});
  def.dimensions.push_back(DimensionDef{"Severity", {"Severity"}, {}});
  return def;
}

Result<Warehouse> TelemetrySampler::BuildWarehouse() const {
  // Union the staging tables into one extract with the columns the
  // schema references. Per-source conventions:
  //   metric rows: Kind counter|gauge|histogram, Severity "-",
  //                Value = counter/gauge value or histogram mean
  //   span rows:   Kind "span",  Severity "-", Value = duration_us
  //   event rows:  Kind "event", Severity = level, Value = 1
  Table extract = MakeStagingTable({{"Snapshot", DataType::kInt64},
                                    {"Kind", DataType::kString},
                                    {"Layer", DataType::kString},
                                    {"Name", DataType::kString},
                                    {"Severity", DataType::kString},
                                    {"Value", DataType::kDouble}});
  {
    MutexLock lock(mu_);
    const Value dash = Value::Str("-");
    for (size_t i = 0; i < metric_samples_.num_rows(); ++i) {
      Row r = metric_samples_.GetRow(i);
      DDGMS_RETURN_IF_ERROR(
          extract.AppendRow({r[0], r[1], r[2], r[3], dash, r[4]}));
    }
    for (size_t i = 0; i < span_facts_.num_rows(); ++i) {
      Row r = span_facts_.GetRow(i);
      DDGMS_RETURN_IF_ERROR(extract.AppendRow(
          {r[0], Value::Str("span"), r[1], r[2], dash, r[6]}));
    }
    for (size_t i = 0; i < event_facts_.num_rows(); ++i) {
      Row r = event_facts_.GetRow(i);
      DDGMS_RETURN_IF_ERROR(extract.AppendRow(
          {r[0], Value::Str("event"), r[1], r[2], r[3],
           Value::Real(1.0)}));
    }
  }
  if (extract.num_rows() == 0) {
    return Status::FailedPrecondition(
        "no telemetry sampled yet - take a sample first (shell: "
        "`telemetry sample`)");
  }
  StarSchemaBuilder builder(TelemetrySchemaDef());
  return builder.Build(extract);
}

void TelemetrySampler::Clear() {
  MutexLock lock(mu_);
  // Rebuild empty tables with the same schemas.
  metric_samples_ = Table(metric_samples_.schema());
  span_facts_ = Table(span_facts_.schema());
  event_facts_ = Table(event_facts_.schema());
  next_snapshot_ = 1;
}

}  // namespace ddgms::warehouse
