#include "warehouse/journal.h"

#include "common/checksum.h"
#include "common/faults.h"
#include "common/strings.h"
#include "warehouse/snapshot.h"

namespace ddgms::warehouse {

namespace {

// "DDWJ" little-endian.
constexpr uint32_t kRecordMagic = 0x4A574444u;
constexpr size_t kRecordHeaderSize = 12;  // magic + length + crc

}  // namespace

Result<JournalWriter> JournalWriter::Open(const std::string& path) {
  DDGMS_FAULT_POINT("journal.open");
  DDGMS_ASSIGN_OR_RETURN(AppendWriter writer, AppendWriter::Open(path));
  return JournalWriter(std::move(writer));
}

Status JournalWriter::AppendBatch(const Table& batch, bool sync) {
  DDGMS_FAULT_POINT("journal.append_batch");
  std::string payload;
  EncodeTable(batch, &payload);
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  PutU32(&record, kRecordMagic);
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, MaskCrc32c(Crc32c(payload)));
  record += payload;
  DDGMS_RETURN_IF_ERROR(writer_.Append(record));
  if (sync) {
    DDGMS_FAULT_POINT("journal.sync");
    DDGMS_RETURN_IF_ERROR(writer_.Sync());
  }
  return Status::OK();
}

Result<JournalReplayStats> ReplayJournal(
    const std::string& path,
    const std::function<Status(Table batch, size_t record_index)>& apply) {
  JournalReplayStats stats;
  if (!FileExists(path)) return stats;
  DDGMS_ASSIGN_OR_RETURN(std::string bytes, ReadFileBinary(path));
  ByteReader reader(bytes);
  auto stop_corrupt = [&](std::string why) {
    stats.corruption = std::move(why);
    stats.dropped_bytes = bytes.size() - stats.valid_bytes;
  };
  while (reader.remaining() > 0) {
    DDGMS_FAULT_POINT("journal.replay_record");
    if (reader.remaining() < kRecordHeaderSize) {
      stop_corrupt(StrFormat("torn record header at offset %llu "
                             "(%zu bytes, need %zu)",
                             static_cast<unsigned long long>(
                                 stats.valid_bytes),
                             reader.remaining(), kRecordHeaderSize));
      break;
    }
    // Header reads cannot fail: remaining() was checked above.
    uint32_t magic = reader.ReadU32().value();
    uint32_t payload_len = reader.ReadU32().value();
    uint32_t stored_crc = reader.ReadU32().value();
    if (magic != kRecordMagic) {
      stop_corrupt(StrFormat("bad record magic at offset %llu",
                             static_cast<unsigned long long>(
                                 stats.valid_bytes)));
      break;
    }
    if (reader.remaining() < payload_len) {
      stop_corrupt(StrFormat("torn record payload at offset %llu "
                             "(%zu of %u bytes present)",
                             static_cast<unsigned long long>(
                                 stats.valid_bytes),
                             reader.remaining(), payload_len));
      break;
    }
    std::string_view payload = reader.ReadBytes(payload_len).value();
    if (MaskCrc32c(Crc32c(payload)) != stored_crc) {
      stop_corrupt(StrFormat("checksum mismatch in record %zu at "
                             "offset %llu",
                             stats.records_applied,
                             static_cast<unsigned long long>(
                                 stats.valid_bytes)));
      break;
    }
    auto batch = DecodeTable(payload);
    if (!batch.ok()) {
      // CRC passed but the payload does not decode — a writer bug or a
      // collision; either way the record is unusable and so is
      // everything after it.
      stop_corrupt(StrFormat("record %zu fails to decode: %s",
                             stats.records_applied,
                             batch.status().ToString().c_str()));
      break;
    }
    DDGMS_RETURN_IF_ERROR(
        apply(std::move(batch).value(), stats.records_applied));
    ++stats.records_applied;
    stats.valid_bytes = reader.offset();
    stats.record_end_offsets.push_back(reader.offset());
  }
  return stats;
}

Status TruncateJournalTail(const std::string& path,
                           const JournalReplayStats& stats) {
  if (stats.clean() || !FileExists(path)) return Status::OK();
  return TruncateFile(path, stats.valid_bytes);
}

}  // namespace ddgms::warehouse
