#include "warehouse/warehouse.h"

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/csv.h"
#include "common/faults.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ddgms::warehouse {

uint64_t NextWarehouseGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Result<Value> Dimension::AttributeValue(int64_t key,
                                        const std::string& attribute) const {
  if (key < 0 || static_cast<size_t>(key) >= table_.num_rows()) {
    return Status::OutOfRange(
        StrFormat("key %lld out of range for dimension '%s' (%zu members)",
                  static_cast<long long>(key), name().c_str(),
                  table_.num_rows()));
  }
  return table_.GetCell(static_cast<size_t>(key), attribute);
}

bool Dimension::HasAttribute(const std::string& attribute) const {
  return table_.schema().HasField(attribute);
}

const Hierarchy* Dimension::HierarchyOf(const std::string& attribute) const {
  for (const Hierarchy& h : def_.hierarchies) {
    for (const std::string& level : h.levels) {
      if (level == attribute) return &h;
    }
  }
  return nullptr;
}

Result<std::string> Dimension::FinerLevel(
    const std::string& attribute) const {
  const Hierarchy* h = HierarchyOf(attribute);
  if (h == nullptr) {
    return Status::NotFound("attribute '" + attribute +
                            "' is not in a hierarchy of dimension '" +
                            name() + "'");
  }
  for (size_t i = 0; i + 1 < h->levels.size(); ++i) {
    if (h->levels[i] == attribute) return h->levels[i + 1];
  }
  return Status::NotFound("attribute '" + attribute +
                          "' is the finest level of hierarchy '" + h->name +
                          "'");
}

Result<std::string> Dimension::CoarserLevel(
    const std::string& attribute) const {
  const Hierarchy* h = HierarchyOf(attribute);
  if (h == nullptr) {
    return Status::NotFound("attribute '" + attribute +
                            "' is not in a hierarchy of dimension '" +
                            name() + "'");
  }
  for (size_t i = 1; i < h->levels.size(); ++i) {
    if (h->levels[i] == attribute) return h->levels[i - 1];
  }
  return Status::NotFound("attribute '" + attribute +
                          "' is the coarsest level of hierarchy '" +
                          h->name + "'");
}

Status Dimension::AddDerivedAttribute(
    const std::string& attribute, DataType type,
    const std::function<Value(const Dimension&, int64_t key)>& fn) {
  if (HasAttribute(attribute)) {
    return Status::AlreadyExists("dimension '" + name() +
                                 "' already has attribute '" + attribute +
                                 "'");
  }
  ColumnVector col(attribute, type);
  for (size_t key = 0; key < table_.num_rows(); ++key) {
    DDGMS_RETURN_IF_ERROR(
        col.Append(fn(*this, static_cast<int64_t>(key))));
  }
  DDGMS_RETURN_IF_ERROR(table_.AddColumn(std::move(col)));
  def_.attributes.push_back(attribute);
  return Status::OK();
}

std::string IntegrityReport::ToString() const {
  std::string out = StrFormat("integrity: %s (%zu fact rows)",
                              ok ? "OK" : "VIOLATIONS", fact_rows);
  for (const std::string& v : violations) {
    out += "\n  " + v;
  }
  return out;
}

Result<const Dimension*> Warehouse::dimension(
    const std::string& name) const {
  for (const Dimension& d : dimensions_) {
    if (d.name() == name) return &d;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

Result<Dimension*> Warehouse::mutable_dimension(const std::string& name) {
  for (Dimension& d : dimensions_) {
    if (d.name() == name) return &d;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

Result<int64_t> Warehouse::FactKey(size_t fact_row,
                                   const std::string& dimension_name) const {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                         fact_.ColumnByName(KeyColumnName(dimension_name)));
  if (fact_row >= col->size()) {
    return Status::OutOfRange(StrFormat("fact row %zu out of range",
                                        fact_row));
  }
  return col->IntAt(fact_row);
}

Result<const Dimension*> Warehouse::DimensionOfAttribute(
    const std::string& attribute) const {
  for (const Dimension& d : dimensions_) {
    if (d.HasAttribute(attribute)) return &d;
  }
  return Status::NotFound("no dimension declares attribute '" + attribute +
                          "'");
}

Result<Table> Warehouse::JoinedView(
    const std::vector<std::string>& attributes) const {
  // Resolve each attribute to (dimension, key column).
  struct Source {
    const Dimension* dim;
    const ColumnVector* key_col;
    const ColumnVector* attr_col;
  };
  std::vector<Source> sources;
  sources.reserve(attributes.size());
  std::vector<Field> fields;
  for (const std::string& attr : attributes) {
    DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                           DimensionOfAttribute(attr));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* key_col,
                           fact_.ColumnByName(KeyColumnName(dim->name())));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* attr_col,
                           dim->table().ColumnByName(attr));
    sources.push_back(Source{dim, key_col, attr_col});
    fields.push_back(Field{attr, attr_col->type()});
  }
  std::vector<const ColumnVector*> measure_cols;
  for (const MeasureDef& m : def_.measures) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           fact_.ColumnByName(m.name));
    measure_cols.push_back(col);
    fields.push_back(Field{m.name, col->type()});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));
  const size_t n = fact_.num_rows();
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.reserve(sources.size() + measure_cols.size());
    for (const Source& src : sources) {
      int64_t key = src.key_col->IntAt(i);
      row.push_back(src.attr_col->GetValue(static_cast<size_t>(key)));
    }
    for (const ColumnVector* col : measure_cols) {
      row.push_back(col->GetValue(i));
    }
    DDGMS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Status Warehouse::AddFeedbackDimension(
    const std::string& dimension_name, const std::string& attribute,
    const std::function<Value(const Warehouse&, size_t fact_row)>&
        labeler) {
  if (dimension(dimension_name).ok()) {
    return Status::AlreadyExists("dimension '" + dimension_name +
                                 "' already exists");
  }
  // Label every fact row, deduplicating labels into members.
  std::unordered_map<Value, int64_t, ValueHash, ValueEq> member_keys;
  std::vector<Value> members;
  ColumnVector key_col(KeyColumnName(dimension_name), DataType::kInt64);
  const size_t n = fact_.num_rows();
  DataType label_type = DataType::kString;
  for (size_t i = 0; i < n; ++i) {
    Value label = labeler(*this, i);
    if (!label.is_null()) label_type = label.type();
    auto [it, inserted] =
        member_keys.emplace(label, static_cast<int64_t>(members.size()));
    if (inserted) members.push_back(label);
    key_col.AppendInt(it->second);
  }

  DDGMS_ASSIGN_OR_RETURN(Schema dim_schema,
                         Schema::Make({Field{attribute, label_type}}));
  Table dim_table(std::move(dim_schema));
  for (const Value& m : members) {
    DDGMS_RETURN_IF_ERROR(dim_table.AppendRow({m}));
  }
  DimensionDef dim_def;
  dim_def.name = dimension_name;
  dim_def.attributes = {attribute};
  DDGMS_RETURN_IF_ERROR(fact_.AddColumn(std::move(key_col)));
  dimensions_.emplace_back(std::move(dim_def), std::move(dim_table));
  def_.dimensions.push_back(dimensions_.back().def());
  generation_ = NextWarehouseGeneration();
  return Status::OK();
}

Status Warehouse::AppendRows(const Table& source) {
  DDGMS_FAULT_POINT("warehouse.append_rows");
  // Resolve source columns for every dimension attribute and measure.
  struct DimSource {
    Dimension* dim;
    std::vector<const ColumnVector*> attr_cols;
    std::unordered_map<std::vector<Value>, int64_t, ValueVectorHash,
                       ValueVectorEq>
        keys;
  };
  std::vector<DimSource> dim_sources;
  dim_sources.reserve(dimensions_.size());
  for (Dimension& dim : dimensions_) {
    DimSource src;
    src.dim = &dim;
    for (const std::string& attr : dim.def().attributes) {
      DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                             source.ColumnByName(attr));
      src.attr_cols.push_back(col);
    }
    // Rebuild the member dictionary from the existing dimension table.
    const Table& dim_table = dim.table();
    for (size_t key = 0; key < dim_table.num_rows(); ++key) {
      std::vector<Value> tuple;
      tuple.reserve(dim.def().attributes.size());
      for (const std::string& attr : dim.def().attributes) {
        DDGMS_ASSIGN_OR_RETURN(Value v, dim_table.GetCell(key, attr));
        tuple.push_back(std::move(v));
      }
      src.keys.emplace(std::move(tuple), static_cast<int64_t>(key));
    }
    dim_sources.push_back(std::move(src));
  }
  std::vector<const ColumnVector*> measure_cols;
  for (const MeasureDef& m : def_.measures) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           source.ColumnByName(m.source_column));
    measure_cols.push_back(col);
  }
  const ColumnVector* degenerate_col = nullptr;
  if (!def_.degenerate_key.empty()) {
    DDGMS_ASSIGN_OR_RETURN(degenerate_col,
                           source.ColumnByName(def_.degenerate_key));
  }

  const size_t n = source.num_rows();
  for (size_t i = 0; i < n; ++i) {
    Row fact_row;
    fact_row.reserve(dimensions_.size() + def_.measures.size() + 1);
    for (DimSource& src : dim_sources) {
      std::vector<Value> tuple;
      tuple.reserve(src.attr_cols.size());
      for (const ColumnVector* col : src.attr_cols) {
        tuple.push_back(col->GetValue(i));
      }
      auto [it, inserted] = src.keys.emplace(
          tuple, static_cast<int64_t>(src.dim->num_members()));
      if (inserted) {
        DDGMS_RETURN_IF_ERROR(src.dim->table_.AppendRow(tuple));
      }
      fact_row.push_back(Value::Int(it->second));
    }
    if (degenerate_col != nullptr) {
      fact_row.push_back(degenerate_col->GetValue(i));
    }
    for (const ColumnVector* col : measure_cols) {
      Value v = col->GetValue(i);
      if (!v.is_null() && v.type() == DataType::kBool) {
        v = Value::Int(v.bool_value() ? 1 : 0);
      }
      fact_row.push_back(std::move(v));
    }
    DDGMS_RETURN_IF_ERROR(fact_.AppendRow(fact_row));
  }
  generation_ = NextWarehouseGeneration();
  return Status::OK();
}

IntegrityReport Warehouse::CheckIntegrity() const {
  IntegrityReport report;
  report.fact_rows = fact_.num_rows();

  // Foreign keys must exist and be in range.
  for (const Dimension& dim : dimensions_) {
    auto col = fact_.ColumnByName(KeyColumnName(dim.name()));
    if (!col.ok()) {
      report.ok = false;
      report.violations.push_back("fact table missing key column for '" +
                                  dim.name() + "'");
      continue;
    }
    for (size_t i = 0; i < (*col)->size(); ++i) {
      if ((*col)->IsNull(i)) {
        report.ok = false;
        report.violations.push_back(
            StrFormat("null key for dimension '%s' at fact row %zu",
                      dim.name().c_str(), i));
        break;
      }
      int64_t key = (*col)->IntAt(i);
      if (key < 0 || static_cast<size_t>(key) >= dim.num_members()) {
        report.ok = false;
        report.violations.push_back(StrFormat(
            "dangling key %lld for dimension '%s' at fact row %zu",
            static_cast<long long>(key), dim.name().c_str(), i));
        break;
      }
    }
  }

  // Hierarchies must be functional: fine value -> unique coarse value.
  for (const Dimension& dim : dimensions_) {
    for (const Hierarchy& h : dim.def().hierarchies) {
      for (size_t lvl = 0; lvl + 1 < h.levels.size(); ++lvl) {
        const std::string& coarse = h.levels[lvl];
        const std::string& fine = h.levels[lvl + 1];
        auto coarse_col = dim.table().ColumnByName(coarse);
        auto fine_col = dim.table().ColumnByName(fine);
        if (!coarse_col.ok() || !fine_col.ok()) {
          report.ok = false;
          report.violations.push_back("hierarchy '" + h.name +
                                      "' references missing attribute");
          continue;
        }
        std::unordered_map<Value, Value, ValueHash, ValueEq> mapping;
        for (size_t i = 0; i < dim.num_members(); ++i) {
          Value f = (*fine_col)->GetValue(i);
          Value c = (*coarse_col)->GetValue(i);
          auto [it, inserted] = mapping.emplace(f, c);
          if (!inserted && !it->second.Equals(c)) {
            report.ok = false;
            report.violations.push_back(StrFormat(
                "hierarchy '%s': fine member '%s' maps to both '%s' and "
                "'%s'",
                h.name.c_str(), f.ToString().c_str(),
                it->second.ToString().c_str(), c.ToString().c_str()));
          }
        }
      }
    }
  }
  return report;
}

Result<Warehouse> StarSchemaBuilder::Build(
    const Table& source, const BuildOptions& options) const {
  DDGMS_FAULT_POINT("warehouse.build");
  DDGMS_RETURN_IF_ERROR(def_.Validate());
  TraceSpan build_span("warehouse.build");
  build_span.SetAttribute("source_rows", source.num_rows());
  build_span.SetAttribute("dimensions", def_.dimensions.size());
  build_span.SetAttribute("measures", def_.measures.size());
  ScopedLatencyTimer build_timer("ddgms.warehouse.build_latency_us");
  ScopedAccounting accounting("warehouse");
  const bool lenient = options.error_mode == ErrorMode::kLenient;
  QuarantineReport local_sink;
  QuarantineReport* quarantine =
      options.quarantine != nullptr ? options.quarantine : &local_sink;

  // Resolve all source columns up front.
  struct DimSource {
    std::vector<const ColumnVector*> attr_cols;
  };
  std::vector<DimSource> dim_sources;
  dim_sources.reserve(def_.dimensions.size());
  for (const DimensionDef& dim : def_.dimensions) {
    DimSource src;
    for (const std::string& attr : dim.attributes) {
      DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                             source.ColumnByName(attr));
      src.attr_cols.push_back(col);
    }
    dim_sources.push_back(std::move(src));
  }
  std::vector<const ColumnVector*> measure_cols;
  for (const MeasureDef& m : def_.measures) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           source.ColumnByName(m.source_column));
    if (!IsNumeric(col->type()) && col->type() != DataType::kBool) {
      return Status::InvalidArgument(
          StrFormat("measure '%s' source column '%s' is not numeric",
                    m.name.c_str(), m.source_column.c_str()));
    }
    measure_cols.push_back(col);
  }
  const ColumnVector* degenerate_col = nullptr;
  if (!def_.degenerate_key.empty()) {
    DDGMS_ASSIGN_OR_RETURN(degenerate_col,
                           source.ColumnByName(def_.degenerate_key));
  }

  // Dimension member dictionaries.
  struct DimBuild {
    std::unordered_map<std::vector<Value>, int64_t, ValueVectorHash,
                       ValueVectorEq>
        keys;
    std::vector<std::vector<Value>> members;
  };
  std::vector<DimBuild> builds(def_.dimensions.size());

  // Fact schema: keys, degenerate key, measures.
  std::vector<Field> fact_fields;
  for (const DimensionDef& dim : def_.dimensions) {
    fact_fields.push_back(
        Field{Warehouse::KeyColumnName(dim.name), DataType::kInt64});
  }
  if (degenerate_col != nullptr) {
    fact_fields.push_back(
        Field{def_.degenerate_key, degenerate_col->type()});
  }
  for (size_t m = 0; m < def_.measures.size(); ++m) {
    DataType t = measure_cols[m]->type();
    if (t == DataType::kBool) t = DataType::kInt64;
    fact_fields.push_back(Field{def_.measures[m].name, t});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema fact_schema,
                         Schema::Make(std::move(fact_fields)));
  Table fact(std::move(fact_schema));

  const size_t n = source.num_rows();
  for (size_t i = 0; i < n; ++i) {
    Row fact_row;
    fact_row.reserve(def_.dimensions.size() + def_.measures.size() + 1);
    Status bad;
    std::string bad_field;
    for (size_t d = 0; d < def_.dimensions.size() && bad.ok(); ++d) {
      std::vector<Value> tuple;
      tuple.reserve(dim_sources[d].attr_cols.size());
      for (const ColumnVector* col : dim_sources[d].attr_cols) {
        tuple.push_back(col->GetValue(i));
      }
      if (lenient) {
        // Referential integrity: a tuple that is null in EVERY
        // attribute identifies no dimension member at all; quarantine
        // instead of minting an all-null member. (Partially-null
        // tuples are legitimate — nulls are valid attribute values,
        // e.g. a diagnosis band for an undiagnosed patient.)
        bool all_null = !tuple.empty();
        for (const Value& v : tuple) {
          if (!v.is_null()) {
            all_null = false;
            break;
          }
        }
        if (all_null) {
          bad_field = def_.dimensions[d].name;
          bad = Status::FailedPrecondition(StrFormat(
              "all-null tuple references no member of dimension '%s'",
              def_.dimensions[d].name.c_str()));
          break;
        }
      }
      auto [it, inserted] = builds[d].keys.emplace(
          tuple, static_cast<int64_t>(builds[d].members.size()));
      if (inserted) builds[d].members.push_back(std::move(tuple));
      fact_row.push_back(Value::Int(it->second));
    }
    if (bad.ok()) {
      if (degenerate_col != nullptr) {
        fact_row.push_back(degenerate_col->GetValue(i));
      }
      for (size_t m = 0; m < measure_cols.size(); ++m) {
        Value v = measure_cols[m]->GetValue(i);
        if (!v.is_null() && v.type() == DataType::kBool) {
          v = Value::Int(v.bool_value() ? 1 : 0);
        }
        fact_row.push_back(std::move(v));
      }
      bad = fact.AppendRow(fact_row);
    }
    if (bad.ok()) continue;
    if (!lenient) return bad;
    DDGMS_METRIC_INC("ddgms.warehouse.ri_rejects");
    std::vector<std::string> cells;
    for (const Value& v : source.GetRow(i)) {
      cells.push_back(v.ToString());
    }
    quarantine->Add("star-schema", i + 1, std::move(bad_field),
                    std::move(bad),
                    TruncateForQuarantine(FormatCsvLine(cells)));
  }

  // Materialize dimension tables.
  size_t surrogate_keys = 0;
  std::vector<Dimension> dimensions;
  dimensions.reserve(def_.dimensions.size());
  for (size_t d = 0; d < def_.dimensions.size(); ++d) {
    surrogate_keys += builds[d].members.size();
    const DimensionDef& dim_def = def_.dimensions[d];
    std::vector<Field> fields;
    for (size_t a = 0; a < dim_def.attributes.size(); ++a) {
      fields.push_back(Field{dim_def.attributes[a],
                             dim_sources[d].attr_cols[a]->type()});
    }
    DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
    Table dim_table(std::move(schema));
    for (const std::vector<Value>& member : builds[d].members) {
      DDGMS_RETURN_IF_ERROR(dim_table.AppendRow(member));
    }
    dimensions.emplace_back(dim_def, std::move(dim_table));
  }

  Warehouse wh(def_, std::move(fact), std::move(dimensions));
  IntegrityReport report;
  {
    TraceSpan check_span("warehouse.integrity_check");
    report = wh.CheckIntegrity();
    check_span.SetAttribute("violations", report.violations.size());
  }
  if (!report.ok) {
    DDGMS_LOG_ERROR("warehouse.integrity")
        .With("fact", def_.fact_name)
        .With("violations", report.violations.size())
        .Message(report.violations.empty() ? "" : report.violations.front());
    return Status::DataLoss("built warehouse failed integrity check:\n" +
                            report.ToString());
  }

  build_span.SetAttribute("fact_rows", wh.fact().num_rows());
  build_span.SetAttribute("surrogate_keys", surrogate_keys);
  DDGMS_LOG_INFO("warehouse.build")
      .With("fact", def_.fact_name)
      .With("fact_rows", wh.fact().num_rows())
      .With("dimensions", def_.dimensions.size())
      .With("surrogate_keys", surrogate_keys)
      .With("quarantined", quarantine->size());
  DDGMS_METRIC_INC("ddgms.warehouse.builds");
  DDGMS_METRIC_ADD("ddgms.warehouse.fact_rows_built",
                   wh.fact().num_rows());
  DDGMS_METRIC_ADD("ddgms.warehouse.surrogate_keys_allocated",
                   surrogate_keys);
  return wh;
}

}  // namespace ddgms::warehouse
