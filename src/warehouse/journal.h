#ifndef DDGMS_WAREHOUSE_JOURNAL_H_
#define DDGMS_WAREHOUSE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "table/table.h"

namespace ddgms::warehouse {

/// -------------------------------------------------------------------
/// Write-ahead journal (.wal)
///
/// Append-only log of ingest batches applied since the last durable
/// snapshot, so a continuously fed warehouse never loses acknowledged
/// data between checkpoints. Each record is self-delimiting and
/// self-verifying:
///
///   u32 magic "DDWJ" | u32 payload length | u32 masked CRC32C | payload
///
/// The payload is a columnar table image (snapshot.h EncodeTable) of
/// one batch in Warehouse::AppendRows source form. A batch is durable
/// once AppendBatch returns OK with sync enabled.
///
/// Replay walks records in order and stops at the first torn, short or
/// corrupt record — everything before it is intact (CRC-verified),
/// everything from it on is unusable and reported, never silently
/// decoded. The stop offset lets recovery truncate the tail so the
/// journal is clean for subsequent appends.
/// -------------------------------------------------------------------

/// Appends batch records; one instance owns the journal file between
/// snapshots.
class JournalWriter {
 public:
  /// Opens `path` for appending, creating it if absent.
  static Result<JournalWriter> Open(const std::string& path);

  /// Appends one batch record; with `sync`, fsyncs before returning so
  /// an OK means the batch survives a crash.
  Status AppendBatch(const Table& batch, bool sync = true);

  /// Journal size in bytes (next record offset).
  uint64_t size() const { return writer_.size(); }
  const std::string& path() const { return writer_.path(); }

 private:
  explicit JournalWriter(AppendWriter writer)
      : writer_(std::move(writer)) {}

  AppendWriter writer_;
};

/// Outcome of one replay pass.
struct JournalReplayStats {
  /// Records decoded, CRC-verified and handed to the handler.
  size_t records_applied = 0;
  /// Bytes of the journal that held valid records; the first corrupt
  /// byte (if any) is at this offset.
  uint64_t valid_bytes = 0;
  /// Bytes from the first corrupt/torn record to end of file.
  uint64_t dropped_bytes = 0;
  /// Why replay stopped early; empty when the journal was clean.
  std::string corruption;
  /// End offset of each applied record (record i spans
  /// [record_end_offsets[i-1], record_end_offsets[i])), so recovery can
  /// truncate after any prefix of records, not just at the corruption
  /// boundary.
  std::vector<uint64_t> record_end_offsets;

  bool clean() const { return corruption.empty(); }
};

/// Replays every valid batch record through `apply` (in append order).
/// A missing journal file is an empty journal. The handler's first
/// error aborts the replay and is returned; journal corruption is NOT
/// an error — it ends the walk and is described in the stats so the
/// caller can truncate and report.
Result<JournalReplayStats> ReplayJournal(
    const std::string& path,
    const std::function<Status(Table batch, size_t record_index)>& apply);

/// Truncates the journal's corrupt tail identified by a replay pass.
/// No-op for a clean replay or a missing file.
Status TruncateJournalTail(const std::string& path,
                           const JournalReplayStats& stats);

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_JOURNAL_H_
