#ifndef DDGMS_WAREHOUSE_TELEMETRY_H_
#define DDGMS_WAREHOUSE_TELEMETRY_H_

#include <string>

#include "common/result.h"
#include "common/sync.h"
#include "table/table.h"
#include "warehouse/warehouse.h"

namespace ddgms::warehouse {

/// -------------------------------------------------------------------
/// Self-observing telemetry warehouse
///
/// The flight recorder's second half: a sampler that snapshots the
/// process-wide MetricsRegistry and drains finished TraceCollector
/// spans and EventLog records into fact tables, then exposes that
/// history through the system's own star-schema/OLAP/MDX machinery —
/// the platform analyses itself with the same engine it offers the
/// clinical scientist.
///
/// Each Sample() call appends one "snapshot" worth of rows to three
/// staging fact tables:
///   fact_metric_sample  (Snapshot, Kind, Layer, Name, Value)
///   fact_span           (Snapshot, Layer, Name, SpanId, ParentSpanId,
///                        StartUs, DurationUs)
///   fact_event          (Snapshot, Layer, Name, Severity, SpanId,
///                        TimeUs)
/// Metrics are snapshotted (cumulative values re-read every sample);
/// spans and events are drained (consumed exactly once — an atomic
/// snapshot-and-clear of each ring, so concurrent emitters lose
/// nothing).
///
/// BuildWarehouse() unions the staging tables into one extract and
/// runs it through StarSchemaBuilder with TelemetrySchemaDef(), so
/// slice/dice/rollup and `SELECT ... FROM [Telemetry]` work over the
/// system's own history. `Layer` is derived from the instrument name
/// ("ddgms.etl.rows_in" -> "etl", span "warehouse.build" ->
/// "warehouse"), giving the Instrument dimension a functional
/// Layer -> Name hierarchy to roll up along.
/// -------------------------------------------------------------------

/// Row counts appended by one Sample() call.
struct TelemetrySampleStats {
  /// 1-based id of this snapshot (the SampleTime dimension key).
  int64_t snapshot = 0;
  size_t metric_rows = 0;
  size_t span_rows = 0;
  size_t event_rows = 0;

  std::string ToString() const;
};

/// Accumulates observability snapshots into fact tables and builds the
/// [Telemetry] star schema over them. Thread-safe.
class TelemetrySampler {
 public:
  TelemetrySampler();

  /// Takes one snapshot: reads the full MetricsRegistry, drains the
  /// trace ring and the event-log ring, and appends the rows. Emits
  /// its own "ddgms.telemetry.samples" metric and "telemetry.sample"
  /// event after draining, so the sampler shows up in the next
  /// snapshot — the recorder records itself.
  Result<TelemetrySampleStats> Sample() EXCLUDES(mu_);

  /// Staging fact tables (rows from every sample so far).
  Table metric_samples() const EXCLUDES(mu_);
  Table span_facts() const EXCLUDES(mu_);
  Table event_facts() const EXCLUDES(mu_);

  /// Snapshots taken since construction/Clear().
  int64_t num_samples() const EXCLUDES(mu_);

  /// Total staged fact rows across the three tables.
  size_t num_rows() const EXCLUDES(mu_);

  /// Builds the telemetry warehouse from everything sampled so far.
  /// FailedPrecondition until the first Sample() lands rows.
  Result<Warehouse> BuildWarehouse() const EXCLUDES(mu_);

  /// The [Telemetry] star schema: measure Value; dimensions
  /// SampleTime(Snapshot), Instrument(Layer > Name), Kind, Severity.
  static StarSchemaDef TelemetrySchemaDef();

  /// Derives the layer ("etl", "warehouse", "mdx", ...) from an
  /// instrument/span/event name; "other" when it has none.
  static std::string LayerOf(const std::string& name);

  /// Drops all staged rows and resets the snapshot counter.
  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  int64_t next_snapshot_ GUARDED_BY(mu_) = 1;
  Table metric_samples_ GUARDED_BY(mu_);
  Table span_facts_ GUARDED_BY(mu_);
  Table event_facts_ GUARDED_BY(mu_);
};

}  // namespace ddgms::warehouse

#endif  // DDGMS_WAREHOUSE_TELEMETRY_H_
