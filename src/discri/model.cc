#include "discri/model.h"

#include "discri/schemes.h"
#include "etl/cleaner.h"
#include "etl/pipeline.h"

namespace ddgms::discri {

using etl::DiscretisationStep;
using etl::ErrorAction;
using etl::RangeRule;
using warehouse::DimensionDef;
using warehouse::Hierarchy;
using warehouse::MeasureDef;
using warehouse::StarSchemaDef;

etl::TransformPipeline MakeDiscriPipeline() {
  etl::Cleaner cleaner;
  cleaner.set_dedupe_keys({"PatientId", "VisitDate"});
  cleaner
      .AddRangeRule(RangeRule{"FBG", 1.0, 35.0, ErrorAction::kSetNull})
      .AddRangeRule(
          RangeRule{"HbA1c", 3.0, 20.0, ErrorAction::kSetNull})
      .AddRangeRule(
          RangeRule{"LyingSBPAverage", 60.0, 260.0, ErrorAction::kSetNull})
      .AddRangeRule(
          RangeRule{"LyingDBPAverage", 30.0, 140.0, ErrorAction::kSetNull})
      .AddRangeRule(RangeRule{"BMI", 10.0, 70.0, ErrorAction::kSetNull})
      .AddRangeRule(
          RangeRule{"eGFR", 1.0, 160.0, ErrorAction::kSetNull})
      .AddRangeRule(
          RangeRule{"TotalCholesterol", 1.0, 15.0, ErrorAction::kSetNull});

  etl::TransformPipeline pipeline;
  pipeline.set_cleaner(std::move(cleaner));
  pipeline
      .AddDiscretisation(DiscretisationStep{"Age", AgeScheme(), "AgeBand"})
      .AddDiscretisation(
          DiscretisationStep{"Age", AgeBand10Scheme(), "AgeBand10"})
      .AddDiscretisation(
          DiscretisationStep{"Age", AgeBand5Scheme(), "AgeBand5"})
      .AddDiscretisation(DiscretisationStep{
          "DiagnosticHTYears", DiagnosticHtYearsScheme(),
          "DiagnosticHTYearsBand"})
      .AddDiscretisation(DiscretisationStep{"FBG", FbgScheme(), "FBGBand"})
      .AddDiscretisation(DiscretisationStep{
          "LyingDBPAverage", LyingDbpScheme(), "LyingDBPBand"})
      .AddDiscretisation(DiscretisationStep{
          "LyingSBPAverage", SystolicBpScheme(), "LyingSBPBand"})
      .AddDiscretisation(DiscretisationStep{"BMI", BmiScheme(), "BMIBand"})
      .AddDiscretisation(
          DiscretisationStep{"eGFR", EgfrScheme(), "eGFRBand"})
      .AddDiscretisation(DiscretisationStep{
          "TotalCholesterol", CholesterolScheme(), "CholesterolBand"})
      .AddDiscretisation(
          DiscretisationStep{"HbA1c", Hba1cScheme(), "HbA1cBand"})
      .AddDiscretisation(DiscretisationStep{
          "ECGHeartRate", HeartRateScheme(), "HeartRateBand"})
      .AddDiscretisation(DiscretisationStep{"QTc", QtcScheme(), "QTcBand"});
  pipeline.set_cardinality("PatientId", "VisitDate");
  pipeline.AddCustomStep(etl::DeriveYearStep("VisitDate", "VisitYear"));
  return pipeline;
}

StarSchemaDef MakeDiscriSchemaDef() {
  StarSchemaDef def;
  def.fact_name = "MedicalMeasures";
  def.degenerate_key = "RecordId";
  def.measures = {
      MeasureDef{"FBG", "FBG"},
      MeasureDef{"HbA1c", "HbA1c"},
      MeasureDef{"BMI", "BMI"},
      MeasureDef{"LyingSBPAverage", "LyingSBPAverage"},
      MeasureDef{"LyingDBPAverage", "LyingDBPAverage"},
      MeasureDef{"eGFR", "eGFR"},
      MeasureDef{"TotalCholesterol", "TotalCholesterol"},
      MeasureDef{"EwingDeepBreathing", "EwingDeepBreathing"},
      MeasureDef{"QTc", "QTc"},
      MeasureDef{"Age", "Age"},
  };

  DimensionDef personal;
  personal.name = "PersonalInformation";
  personal.attributes = {"Gender",
                         "Education",
                         "FamilyHistoryDiabetes",
                         "FamilyHistoryHeartDisease",
                         "Smoker",
                         "BMIBand",
                         "AgeBand",
                         "AgeBand10",
                         "AgeBand5"};
  personal.hierarchies = {Hierarchy{"AgeBands", {"AgeBand10", "AgeBand5"}}};

  DimensionDef condition;
  condition.name = "MedicalCondition";
  condition.attributes = {"DiabetesStatus", "HypertensionStatus",
                          "DiagnosticHTYearsBand", "EwingCategory"};

  DimensionDef bloods;
  bloods.name = "FastingBloods";
  bloods.attributes = {"FBGBand", "HbA1cBand", "CholesterolBand",
                       "eGFRBand"};

  DimensionDef limb;
  limb.name = "LimbHealth";
  limb.attributes = {"KneeReflexes", "AnkleReflexes", "Monofilament"};

  DimensionDef exercise;
  exercise.name = "ExerciseRoutine";
  exercise.attributes = {"ExerciseRoutine"};

  DimensionDef bp;
  bp.name = "BloodPressure";
  bp.attributes = {"LyingDBPBand", "LyingSBPBand"};

  DimensionDef ecg;
  ecg.name = "ECG";
  ecg.attributes = {"HeartRateBand", "QTcBand"};

  DimensionDef cardinality;
  cardinality.name = "Cardinality";
  cardinality.attributes = {"VisitNumber", "VisitCount", "VisitYear"};

  def.dimensions = {personal, condition, bloods, limb,
                    exercise, bp,       ecg,    cardinality};
  return def;
}

Result<warehouse::Warehouse> BuildDiscriWarehouse(
    Table* raw, etl::TransformReport* report) {
  etl::TransformPipeline pipeline = MakeDiscriPipeline();
  DDGMS_ASSIGN_OR_RETURN(etl::TransformReport r, pipeline.Run(raw));
  if (report != nullptr) *report = r;
  warehouse::StarSchemaBuilder builder(MakeDiscriSchemaDef());
  return builder.Build(*raw);
}

}  // namespace ddgms::discri
