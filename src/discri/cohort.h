#ifndef DDGMS_DISCRI_COHORT_H_
#define DDGMS_DISCRI_COHORT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::discri {

/// Synthetic stand-in for the DiScRi screening dataset (Jelinek et al.
/// 2006): the real data (~900 patients, ~2500 attendances, 273
/// attributes) is proprietary, so this generator emits an attendance
/// extract with the published structure and the aggregate patterns the
/// paper's evaluation reports:
///
///  * diabetes prevalence rising with age, with the Fig 5 gender
///    crossover — males dominate the 70-75 band, females the 75-80
///    band, and the proportion of female diabetics drops sharply past
///    ~78;
///  * the Fig 6 dip of 5-10-year hypertension durations in the 70-75
///    and 75-80 age bands;
///  * family-history / age / gender mix for the Fig 4 cross-tab;
///  * repeat attendances (cardinality), measure drift across visits
///    (temporal abstraction), Ewing-battery results with age-dependent
///    missing handgrip tests, and reflex/glucose interactions in the
///    spirit of the AWSum finding the paper recounts;
///  * MCAR missingness and implausible entry errors for the cleaning
///    stage.
///
/// One row per attendance; ~50 clinical attributes (the load-bearing
/// subset of the 273 — see DESIGN.md).
struct CohortOptions {
  size_t num_patients = 900;
  uint64_t seed = 20130408;  // ICDEW'13 workshop date
  int first_visit_year_min = 2002;
  int first_visit_year_max = 2008;
  /// Per-cell missingness for biomarker columns / core columns.
  double biomarker_missing_rate = 0.10;
  double core_missing_rate = 0.03;
  /// Probability of an implausible entry error on a measurement cell.
  double error_rate = 0.004;
};

/// Generates the attendance extract. Columns include PatientId,
/// VisitDate, demographics, condition status, fasting bloods, limb
/// health, blood pressure, Ewing battery, ECG, medication flags and
/// inflammatory/oxidative-stress biomarkers.
Result<Table> GenerateCohort(const CohortOptions& options = {});

/// The diabetes prevalence used by the generator for a given age and
/// gender ("M"/"F") — exposed so tests and benches can verify the
/// published Fig 5 shape against first principles.
double DiabetesPrevalence(int age, const std::string& gender);

/// The hypertension-duration band weights used for a given age band
/// (5-year band label from AgeBand5Scheme). Order matches
/// DiagnosticHtYearsScheme labels (<2, 2-5, 5-10, 10-20, >20).
std::vector<double> HtDurationWeights(int age);

}  // namespace ddgms::discri

#endif  // DDGMS_DISCRI_COHORT_H_
