#include "discri/schemes.h"

#include <cassert>

namespace ddgms::discri {

namespace {

etl::DiscretisationScheme MustMake(std::string name,
                                   std::vector<double> cuts,
                                   std::vector<std::string> labels) {
  auto scheme = etl::DiscretisationScheme::Make(
      std::move(name), std::move(cuts), std::move(labels));
  assert(scheme.ok());
  return std::move(scheme).value();
}

}  // namespace

etl::DiscretisationScheme AgeScheme() {
  return MustMake("Age", {40, 60, 80}, {"<40", "40-60", "60-80", ">80"});
}

etl::DiscretisationScheme AgeBand10Scheme() {
  return MustMake("AgeBand10", {40, 50, 60, 70, 80, 90},
                  {"<40", "40-50", "50-60", "60-70", "70-80", "80-90",
                   ">=90"});
}

etl::DiscretisationScheme AgeBand5Scheme() {
  return MustMake(
      "AgeBand5",
      {40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90},
      {"<40", "40-45", "45-50", "50-55", "55-60", "60-65", "65-70",
       "70-75", "75-80", "80-85", "85-90", ">=90"});
}

etl::DiscretisationScheme DiagnosticHtYearsScheme() {
  return MustMake("DiagnosticHTYears", {2, 5, 10, 20},
                  {"<2", "2-5", "5-10", "10-20", ">20"});
}

etl::DiscretisationScheme FbgScheme() {
  return MustMake("FBG", {5.5, 6.1, 7.0},
                  {"very good", "high", "preDiabetic", "Diabetic"});
}

etl::DiscretisationScheme LyingDbpScheme() {
  return MustMake("LyingDBPAverage", {60, 80, 90},
                  {"low", "normal", "high normal", "hypertension"});
}

etl::DiscretisationScheme SystolicBpScheme() {
  return MustMake("LyingSBPAverage", {120, 140, 160},
                  {"normal", "elevated", "stage1", "stage2"});
}

etl::DiscretisationScheme BmiScheme() {
  return MustMake("BMI", {18.5, 25, 30},
                  {"underweight", "normal", "overweight", "obese"});
}

etl::DiscretisationScheme EgfrScheme() {
  return MustMake("eGFR", {30, 60, 90},
                  {"severe", "moderate", "mild", "normal"});
}

etl::DiscretisationScheme CholesterolScheme() {
  return MustMake("TotalCholesterol", {4, 5.5, 6.5},
                  {"optimal", "normal", "high", "very high"});
}

etl::DiscretisationScheme Hba1cScheme() {
  return MustMake("HbA1c", {5.7, 6.5},
                  {"normal", "preDiabetic", "Diabetic"});
}

etl::DiscretisationScheme HeartRateScheme() {
  return MustMake("ECGHeartRate", {60, 80, 100},
                  {"bradycardic", "normal", "elevated", "tachycardic"});
}

etl::DiscretisationScheme QtcScheme() {
  return MustMake("QTc", {430, 450}, {"normal", "borderline", "prolonged"});
}

std::vector<TableOneEntry> TableOneSchemes() {
  return {
      TableOneEntry{"Age", "Participant's age on test date", AgeScheme()},
      TableOneEntry{"DiagnosticHTYears",
                    "Number of years since diagnosis of hypertension",
                    DiagnosticHtYearsScheme()},
      TableOneEntry{"FBG", "Fasting blood glucose level", FbgScheme()},
      TableOneEntry{"LyingDBPAverage",
                    "Diastolic blood pressure when lying down",
                    LyingDbpScheme()},
  };
}

}  // namespace ddgms::discri
