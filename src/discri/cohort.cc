#include "discri/cohort.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"

namespace ddgms::discri {

double DiabetesPrevalence(int age, const std::string& gender) {
  bool male = gender == "M";
  if (age < 40) return 0.04;
  if (age < 50) return male ? 0.07 : 0.06;
  if (age < 55) return male ? 0.10 : 0.09;
  if (age < 60) return male ? 0.13 : 0.12;
  if (age < 65) return male ? 0.17 : 0.16;
  if (age < 70) return male ? 0.21 : 0.20;
  // Fig 5: males clearly dominate 70-75 even though the clinic's
  // attendance skews female at these ages.
  if (age < 75) return male ? 0.40 : 0.16;
  if (male) return 0.24;
  // Females peak in 75-78 (Fig 5: females majority in 75-80) then the
  // proportion "drops substantially over 78".
  if (age < 78) return 0.31;
  return std::max(0.07, 0.31 - 0.04 * static_cast<double>(age - 78));
}

std::vector<double> HtDurationWeights(int age) {
  if (age < 50) return {0.35, 0.35, 0.20, 0.09, 0.01};
  if (age < 60) return {0.25, 0.30, 0.25, 0.15, 0.05};
  if (age < 70) return {0.20, 0.26, 0.24, 0.20, 0.10};
  // Fig 6: marked drop of 5-10-year durations in the 70-75 and 75-80
  // sub-bands.
  if (age < 80) return {0.24, 0.27, 0.07, 0.26, 0.16};
  return {0.15, 0.20, 0.20, 0.28, 0.17};
}

namespace {

struct Patient {
  std::string id;
  std::string gender;
  std::string education;
  bool fam_diabetes = false;
  bool fam_heart = false;
  std::string smoker;
  int age_first = 60;
  Date first_visit;
  size_t num_visits = 1;
  double bmi_base = 27.0;
  bool diabetic = false;
  double diabetes_years_first = 0.0;  // duration at first visit
  bool latent_prediabetic = false;
  bool has_ht = false;          // ever develops hypertension
  double ht_onset_age = 200.0;  // age at diagnosis (may be mid-study)
  bool can = false;  // cardiovascular autonomic neuropathy
};

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

std::string PickCategory(Rng* rng, const std::vector<double>& weights,
                         const std::vector<std::string>& labels) {
  return labels[rng->Categorical(weights)];
}

Patient MakePatient(size_t index, const CohortOptions& opt, Rng* rng) {
  Patient p;
  p.id = StrFormat("P%04zu", index + 1);
  p.gender = rng->Bernoulli(0.55) ? "F" : "M";
  p.education = PickCategory(
      rng, {0.25, 0.40, 0.25, 0.10},
      {"primary", "secondary", "tertiary", "postgraduate"});
  p.fam_diabetes = rng->Bernoulli(0.30);
  p.fam_heart = rng->Bernoulli(0.25);
  p.smoker =
      PickCategory(rng, {0.55, 0.30, 0.15}, {"never", "former", "current"});

  double mean_age = p.gender == "F" ? 64.0 : 61.0;
  p.age_first =
      static_cast<int>(std::lround(Clamp(rng->Gaussian(mean_age, 11.5),
                                         35.0, 93.0)));
  int year = static_cast<int>(
      rng->UniformInt(opt.first_visit_year_min, opt.first_visit_year_max));
  int month = static_cast<int>(rng->UniformInt(1, 12));
  int day = static_cast<int>(rng->UniformInt(1, 28));
  p.first_visit = Date::FromYmd(year, month, day).value();
  p.num_visits = static_cast<size_t>(
      rng->Categorical({0.25, 0.25, 0.20, 0.15, 0.10, 0.05}) + 1);

  p.bmi_base = Clamp(rng->Gaussian(27.2 + (p.fam_diabetes ? 0.8 : 0.0),
                                   4.3),
                     17.0, 48.0);

  // Diabetes status from the published prevalence shape, tilted by the
  // patient's risk factors (tilt normalized so band means stay on the
  // published curve).
  double prev = DiabetesPrevalence(p.age_first, p.gender);
  double tilt = 1.0 + (p.fam_diabetes ? 0.35 : 0.0) +
                (p.bmi_base > 30.0 ? 0.25 : 0.0);
  double p_diab = Clamp(prev * tilt / 1.18, 0.0, 0.85);
  p.diabetic = rng->Bernoulli(p_diab);
  if (p.diabetic) {
    double max_dur = std::min(18.0, static_cast<double>(p.age_first - 32));
    p.diabetes_years_first = rng->Uniform(0.0, std::max(1.0, max_dur));
  } else {
    double p_pre = 0.10 + (p.bmi_base > 28.0 ? 0.10 : 0.0) +
                   (p.fam_diabetes ? 0.07 : 0.0);
    p.latent_prediabetic = rng->Bernoulli(p_pre);
  }

  double p_ht = Clamp(0.08 + 0.009 * static_cast<double>(p.age_first - 40),
                      0.05, 0.60);
  p.has_ht = rng->Bernoulli(p_ht);
  if (p.has_ht) {
    // Expected age span of this patient's attendances.
    double span = 1.2 * static_cast<double>(p.num_visits - 1) + 0.5;
    double age_last = static_cast<double>(p.age_first) + span;
    bool visits_70s = age_last >= 70.0 && p.age_first < 80;
    if (visits_70s) {
      // Fig 6 structure: durations observed in the 70-80 band cluster
      // either long-standing (>= 10 years at every visit) or recently
      // diagnosed (< 5 years through the last visit), with a thin
      // middle — producing the published 5-10-year dip.
      double r = rng->NextDouble();
      if (r < 0.42) {
        // Long-standing: already >= 10 years at the first visit.
        p.ht_onset_age = static_cast<double>(p.age_first) -
                         rng->Uniform(10.5, 25.0);
      } else if (r < 0.95) {
        // Recent: at most ~4.9 years by the final visit (diagnosis may
        // land mid-study; earlier visits show no hypertension).
        p.ht_onset_age = age_last - rng->Uniform(1.5, 4.9);
      } else {
        // Thin middle keeps a few 5-10-year readings (the dip is a
        // drop, not a void).
        p.ht_onset_age = static_cast<double>(p.age_first) -
                         rng->Uniform(4.0, 10.0);
      }
      p.ht_onset_age = std::max(32.0, p.ht_onset_age);
    } else {
      std::vector<double> weights = HtDurationWeights(p.age_first);
      size_t bucket = rng->Categorical(weights);
      double duration = 0.0;
      switch (bucket) {
        case 0: duration = rng->Uniform(0.1, 2.0); break;
        case 1: duration = rng->Uniform(2.0, 5.0); break;
        case 2: duration = rng->Uniform(5.0, 10.0); break;
        case 3: duration = rng->Uniform(10.0, 20.0); break;
        default:
          duration = rng->Uniform(
              20.0, std::max(21.0, std::min(
                                30.0,
                                static_cast<double>(p.age_first - 25))));
          break;
      }
      p.ht_onset_age =
          std::max(30.0, static_cast<double>(p.age_first) - duration);
    }
  }

  double p_can =
      Clamp(0.04 + (p.diabetic ? 0.03 * p.diabetes_years_first : 0.0) +
                0.002 * static_cast<double>(std::max(0, p.age_first - 50)),
            0.0, 0.65);
  p.can = rng->Bernoulli(p_can);
  return p;
}

}  // namespace

Result<Table> GenerateCohort(const CohortOptions& options) {
  if (options.num_patients == 0) {
    return Status::InvalidArgument("num_patients must be positive");
  }
  std::vector<Field> fields = {
      {"RecordId", DataType::kInt64},
      {"PatientId", DataType::kString},
      {"VisitDate", DataType::kDate},
      {"Age", DataType::kInt64},
      {"Gender", DataType::kString},
      {"Education", DataType::kString},
      {"FamilyHistoryDiabetes", DataType::kString},
      {"FamilyHistoryHeartDisease", DataType::kString},
      {"Smoker", DataType::kString},
      {"ExerciseRoutine", DataType::kString},
      {"BMI", DataType::kDouble},
      {"FBG", DataType::kDouble},
      {"HbA1c", DataType::kDouble},
      {"TotalCholesterol", DataType::kDouble},
      {"HDL", DataType::kDouble},
      {"LDL", DataType::kDouble},
      {"Triglycerides", DataType::kDouble},
      {"LyingSBPAverage", DataType::kDouble},
      {"LyingDBPAverage", DataType::kDouble},
      {"StandingSBPAverage", DataType::kDouble},
      {"StandingDBPAverage", DataType::kDouble},
      {"eGFR", DataType::kDouble},
      {"ACR", DataType::kDouble},
      {"KneeReflexes", DataType::kString},
      {"AnkleReflexes", DataType::kString},
      {"Monofilament", DataType::kString},
      {"EwingDeepBreathing", DataType::kDouble},
      {"EwingValsalva", DataType::kDouble},
      {"Ewing3015", DataType::kDouble},
      {"EwingPosturalDrop", DataType::kDouble},
      {"EwingHandGrip", DataType::kDouble},
      {"EwingCategory", DataType::kString},
      {"ECGHeartRate", DataType::kDouble},
      {"QTc", DataType::kDouble},
      {"MedAntihypertensive", DataType::kBool},
      {"MedStatin", DataType::kBool},
      {"MedMetformin", DataType::kBool},
      {"MedInsulin", DataType::kBool},
      {"DiabetesStatus", DataType::kString},
      {"DiabetesYears", DataType::kDouble},
      {"HypertensionStatus", DataType::kString},
      {"DiagnosticHTYears", DataType::kDouble},
      {"CRP", DataType::kDouble},
      {"IL6", DataType::kDouble},
      {"TNFa", DataType::kDouble},
      {"UricAcid", DataType::kDouble},
      {"Ferritin", DataType::kDouble},
      {"MDA", DataType::kDouble},
      {"GSH", DataType::kDouble},
      {"Homocysteine", DataType::kDouble},
      {"VitaminD", DataType::kDouble},
  };
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table table(std::move(schema));

  Rng rng(options.seed);
  int64_t record_id = 1;
  for (size_t pi = 0; pi < options.num_patients; ++pi) {
    Patient p = MakePatient(pi, options, &rng);
    Date visit_date = p.first_visit;
    double years_since_first = 0.0;
    double bmi = p.bmi_base;
    for (size_t v = 0; v < p.num_visits; ++v) {
      if (v > 0) {
        double gap = std::max(0.4, rng.Gaussian(1.1, 0.3));
        years_since_first += gap;
        visit_date = p.first_visit.AddDays(
            static_cast<int32_t>(std::lround(years_since_first * 365.25)));
      }
      int age = p.age_first + static_cast<int>(years_since_first);
      double diab_years = p.diabetic
                              ? p.diabetes_years_first + years_since_first
                              : 0.0;
      bool male = p.gender == "M";

      bmi = Clamp(bmi + rng.Gaussian(0.05, 0.5), 16.0, 50.0);

      // Fasting bloods.
      double fbg;
      if (p.diabetic) {
        fbg = std::max(5.8, rng.Gaussian(8.2 + 0.12 * diab_years, 1.4));
      } else if (p.latent_prediabetic) {
        fbg = Clamp(rng.Gaussian(6.5, 0.35), 5.6, 7.8);
      } else {
        fbg = Clamp(rng.Gaussian(5.05, 0.45), 3.4, 6.4);
      }
      double hba1c = std::max(4.0, 2.6 + 0.52 * fbg + rng.Gaussian(0, 0.35));

      bool statin = rng.Bernoulli(
          Clamp(0.20 + (p.diabetic ? 0.30 : 0.0) + 0.002 * (age - 50),
                0.0, 0.8));
      double tc = std::max(2.5, rng.Gaussian(5.5, 0.95) -
                                    (statin ? 1.0 : 0.0) +
                                    (p.fam_heart ? 0.25 : 0.0));
      double hdl = Clamp(rng.Gaussian(male ? 1.22 : 1.45, 0.28) -
                             (p.diabetic ? 0.12 : 0.0),
                         0.5, 3.0);
      double tg = Clamp(std::exp(rng.Gaussian(
                            0.25 + (p.diabetic ? 0.3 : 0.0) +
                                (bmi > 30 ? 0.2 : 0.0),
                            0.45)),
                        0.3, 9.0);
      double ldl = std::max(0.4, tc - hdl - tg / 2.2 + rng.Gaussian(0, 0.2));

      // Hypertension status as of this visit (may switch on mid-study).
      double age_frac =
          static_cast<double>(p.age_first) + years_since_first;
      bool ht_active = p.has_ht && age_frac >= p.ht_onset_age;
      double ht_years = ht_active ? age_frac - p.ht_onset_age : 0.0;

      // Blood pressure (lying and standing).
      bool med_ht = ht_active && rng.Bernoulli(0.85);
      double sbp = rng.Gaussian(112 + 0.45 * (age - 40) +
                                    (ht_active ? 18.0 : 0.0) -
                                    (med_ht ? 8.0 : 0.0),
                                8.0);
      double dbp = rng.Gaussian(68 + 0.10 * (age - 40) +
                                    (ht_active ? 9.0 : 0.0) -
                                    (med_ht ? 5.0 : 0.0),
                                6.0);
      sbp = Clamp(sbp, 85, 230);
      dbp = Clamp(dbp, 45, 130);
      double postural_sbp_drop = p.can ? std::max(0.0, rng.Gaussian(22, 8))
                                       : std::max(0.0, rng.Gaussian(4, 4));
      double standing_sbp = std::max(70.0, sbp - postural_sbp_drop);
      double standing_dbp = std::max(
          40.0, dbp - (p.can ? std::max(0.0, rng.Gaussian(8, 4))
                             : std::max(0.0, rng.Gaussian(1, 3))));

      // Kidney function.
      double egfr = Clamp(rng.Gaussian(100 - 0.8 * (age - 40) -
                                           (p.diabetic
                                                ? 0.9 * diab_years
                                                : 0.0),
                                       10.0),
                          8.0, 130.0);
      double acr = Clamp(
          std::exp(rng.Gaussian(0.7 + (p.diabetic ? 0.5 : 0.0), 0.8)),
          0.1, 300.0);

      // Limb health. Absent reflexes track neuropathy and — per the
      // AWSum finding — also appear with mid-range (preDiabetic)
      // glucose.
      double p_absent = 0.04;
      if (fbg >= 6.1 && fbg < 7.0) p_absent += 0.12;
      if (p.diabetic && diab_years > 5) p_absent += 0.22;
      if (p.can) p_absent += 0.15;
      p_absent = Clamp(p_absent, 0.0, 0.7);
      double p_reduced = Clamp(0.10 + p_absent * 0.8, 0.0, 0.9 - p_absent);
      auto sample_reflex = [&]() {
        return PickCategory(&rng,
                            {1.0 - p_absent - p_reduced, p_reduced,
                             p_absent},
                            {"normal", "reduced", "absent"});
      };
      std::string knee = sample_reflex();
      std::string ankle = sample_reflex();
      std::string monofilament = PickCategory(
          &rng,
          {Clamp(1.0 - p_absent * 1.2, 0.1, 1.0),
           Clamp(p_absent * 0.8, 0.0, 0.6),
           Clamp(p_absent * 0.4, 0.0, 0.4)},
          {"normal", "reduced", "absent"});

      // Ewing battery of autonomic function tests.
      double deep_breathing = std::max(
          1.0, rng.Gaussian(18 - 0.15 * (age - 40) - (p.can ? 8.0 : 0.0),
                            4.5));
      double valsalva = Clamp(
          rng.Gaussian(1.45 - (p.can ? 0.25 : 0.0), 0.15), 0.95, 2.2);
      double ratio3015 = Clamp(
          rng.Gaussian(1.12 - (p.can ? 0.10 : 0.0), 0.07), 0.85, 1.5);
      double postural_drop = postural_sbp_drop;
      double handgrip = std::max(
          0.0, rng.Gaussian(20 - (p.can ? 9.0 : 0.0), 6.0));
      double p_handgrip_missing = age < 60    ? 0.05
                                  : age < 70  ? 0.15
                                  : age < 80  ? 0.35
                                              : 0.55;
      bool handgrip_missing = rng.Bernoulli(p_handgrip_missing);

      int abnormal = 0;
      if (deep_breathing < 10) ++abnormal;
      if (valsalva < 1.21) ++abnormal;
      if (ratio3015 < 1.04) ++abnormal;
      if (postural_drop > 20) ++abnormal;
      if (!handgrip_missing && handgrip < 10) ++abnormal;
      std::string ewing_category;
      if (abnormal == 0) {
        ewing_category = "normal";
      } else if (abnormal == 1) {
        ewing_category = rng.Bernoulli(0.12) ? "atypical" : "early";
      } else if (abnormal == 2) {
        ewing_category = "definite";
      } else {
        ewing_category = "severe";
      }

      // ECG summary.
      double heart_rate = Clamp(
          rng.Gaussian(72 + (p.diabetic ? 2.5 : 0.0), 9.0), 42, 130);
      double qtc = Clamp(rng.Gaussian(405 + (p.can ? 18.0 : 0.0) +
                                          (male ? 0.0 : 8.0),
                                      18.0),
                         350, 520);

      bool metformin = p.diabetic && rng.Bernoulli(0.8);
      bool insulin = p.diabetic && diab_years > 8 && rng.Bernoulli(0.35);

      std::string exercise = PickCategory(
          &rng,
          {0.20 + 0.004 * (age - 40) + (p.diabetic ? 0.08 : 0.0),
           0.35, 0.30, std::max(0.03, 0.15 - 0.003 * (age - 40))},
          {"sedentary", "light", "moderate", "vigorous"});

      // Biomarkers (inflammatory + oxidative stress panels).
      double crp = Clamp(std::exp(rng.Gaussian(
                             0.6 + (p.diabetic ? 0.3 : 0.0) +
                                 (bmi > 30 ? 0.2 : 0.0),
                             0.7)),
                         0.1, 80.0);
      double il6 = Clamp(
          std::exp(rng.Gaussian(0.5 + (p.diabetic ? 0.25 : 0.0), 0.6)),
          0.1, 40.0);
      double tnfa = Clamp(
          std::exp(rng.Gaussian(0.7 + (p.diabetic ? 0.2 : 0.0), 0.5)),
          0.2, 30.0);
      double uric = Clamp(
          rng.Gaussian(0.32 + (male ? 0.03 : 0.0), 0.07), 0.1, 0.7);
      double ferritin = Clamp(
          std::exp(rng.Gaussian(male ? 4.6 : 4.0, 0.6)), 5.0, 1200.0);
      double mda = Clamp(rng.Gaussian(1.8 + (p.diabetic ? 0.5 : 0.0) +
                                          (p.can ? 0.3 : 0.0),
                                      0.5),
                         0.4, 6.0);
      double gsh = Clamp(rng.Gaussian(900 - (p.diabetic ? 120.0 : 0.0) -
                                          (p.can ? 60.0 : 0.0),
                                      150.0),
                         250, 1500);
      double homocysteine = Clamp(
          std::exp(rng.Gaussian(2.3 + (age > 65 ? 0.15 : 0.0), 0.3)), 4.0,
          60.0);
      double vitamin_d = Clamp(rng.Gaussian(62, 20), 12, 160);

      // Entry errors on measurement cells (cleaned by the ETL stage).
      auto with_error = [&](double v, double bad) {
        return rng.Bernoulli(options.error_rate) ? bad : v;
      };
      double fbg_out = with_error(fbg, fbg * 10.0);
      double sbp_out = with_error(sbp, 999.0);
      double dbp_out = with_error(dbp, -dbp);
      double bmi_out = with_error(bmi, bmi * 10.0);

      // MCAR missingness.
      auto core = [&](double v) {
        return rng.Bernoulli(options.core_missing_rate)
                   ? Value::Null()
                   : Value::Real(v);
      };
      auto bio = [&](double v) {
        return rng.Bernoulli(options.biomarker_missing_rate)
                   ? Value::Null()
                   : Value::Real(v);
      };

      Row row = {
          Value::Int(record_id++),
          Value::Str(p.id),
          Value::FromDate(visit_date),
          Value::Int(age),
          Value::Str(p.gender),
          Value::Str(p.education),
          Value::Str(p.fam_diabetes ? "Yes" : "No"),
          Value::Str(p.fam_heart ? "Yes" : "No"),
          Value::Str(p.smoker),
          Value::Str(exercise),
          core(bmi_out),
          core(fbg_out),
          core(hba1c),
          core(tc),
          core(hdl),
          core(ldl),
          core(tg),
          core(sbp_out),
          core(dbp_out),
          core(standing_sbp),
          core(standing_dbp),
          core(egfr),
          bio(acr),
          Value::Str(knee),
          Value::Str(ankle),
          Value::Str(monofilament),
          core(deep_breathing),
          core(valsalva),
          core(ratio3015),
          core(postural_drop),
          handgrip_missing ? Value::Null() : Value::Real(handgrip),
          Value::Str(ewing_category),
          core(heart_rate),
          core(qtc),
          Value::Bool(med_ht),
          Value::Bool(statin),
          Value::Bool(metformin),
          Value::Bool(insulin),
          Value::Str(p.diabetic ? "Type2" : "No"),
          p.diabetic ? Value::Real(diab_years) : Value::Null(),
          Value::Str(ht_active ? "Yes" : "No"),
          ht_active ? Value::Real(ht_years) : Value::Null(),
          bio(crp),
          bio(il6),
          bio(tnfa),
          bio(uric),
          bio(ferritin),
          bio(mda),
          bio(gsh),
          bio(homocysteine),
          bio(vitamin_d),
      };
      DDGMS_RETURN_IF_ERROR(table.AppendRow(row));
    }
  }
  return table;
}

}  // namespace ddgms::discri
