#ifndef DDGMS_DISCRI_SCHEMES_H_
#define DDGMS_DISCRI_SCHEMES_H_

#include <string>
#include <vector>

#include "etl/discretize.h"

namespace ddgms::discri {

/// The clinical discretisation schemes of the paper's Table I, plus the
/// additional schemes the DiScRi dimensional model needs (BMI, systolic
/// BP, kidney function, age hierarchies for the Fig 5 drill-down).
/// All factory functions return schemes whose labels follow the paper's
/// spelling where given.

/// Age: <40, 40-60, 60-80, >80 (paper Table I).
etl::DiscretisationScheme AgeScheme();

/// 10-year age bands for OLAP axes: <40, 40-50, ..., 80-90, >=90.
etl::DiscretisationScheme AgeBand10Scheme();

/// 5-year age bands (drill-down target of Fig 5): <40, 40-45, ..., >=90.
etl::DiscretisationScheme AgeBand5Scheme();

/// Years since hypertension diagnosis: <2, 2-5, 5-10, 10-20, >20
/// (paper Table I).
etl::DiscretisationScheme DiagnosticHtYearsScheme();

/// Fasting blood glucose (mmol/L): <5.5 very good, 5.5-6.1 high,
/// 6.1-7 preDiabetic, >=7 Diabetic (paper Table I).
etl::DiscretisationScheme FbgScheme();

/// Lying diastolic BP (mmHg): <60 low, 60-80 normal, 80-90 high normal,
/// >90 hypertension (paper Table I).
etl::DiscretisationScheme LyingDbpScheme();

/// Systolic BP (mmHg): <120 normal, 120-140 elevated, 140-160 stage1,
/// >=160 stage2.
etl::DiscretisationScheme SystolicBpScheme();

/// BMI (kg/m2): <18.5 underweight, 18.5-25 normal, 25-30 overweight,
/// >=30 obese.
etl::DiscretisationScheme BmiScheme();

/// eGFR (mL/min/1.73m2): <30 severe, 30-60 moderate, 60-90 mild,
/// >=90 normal.
etl::DiscretisationScheme EgfrScheme();

/// Total cholesterol (mmol/L): <4 optimal, 4-5.5 normal, 5.5-6.5 high,
/// >=6.5 very high.
etl::DiscretisationScheme CholesterolScheme();

/// HbA1c (%): <5.7 normal, 5.7-6.5 preDiabetic, >=6.5 Diabetic.
etl::DiscretisationScheme Hba1cScheme();

/// Resting heart rate (bpm): <60 bradycardic, 60-80 normal,
/// 80-100 elevated, >=100 tachycardic.
etl::DiscretisationScheme HeartRateScheme();

/// QTc interval (ms): <430 normal, 430-450 borderline, >=450 prolonged.
etl::DiscretisationScheme QtcScheme();

/// One Table I row: attribute, description and its clinical scheme.
struct TableOneEntry {
  std::string attribute;
  std::string description;
  etl::DiscretisationScheme scheme;
};

/// The four schemes the paper's Table I lists, in paper order
/// (Age, Diagnostic HT Years, FBG, Lying DBP Average).
std::vector<TableOneEntry> TableOneSchemes();

}  // namespace ddgms::discri

#endif  // DDGMS_DISCRI_SCHEMES_H_
