#ifndef DDGMS_DISCRI_MODEL_H_
#define DDGMS_DISCRI_MODEL_H_

#include "common/result.h"
#include "etl/pipeline.h"
#include "table/table.h"
#include "warehouse/warehouse.h"

namespace ddgms::discri {

/// The standard DiScRi transformation pipeline (paper §V.A): plausibility
/// cleaning of measurement columns, the Table I clinical discretisation
/// schemes plus the auxiliary schemes the dimensional model needs, and
/// per-patient cardinality assignment.
etl::TransformPipeline MakeDiscriPipeline();

/// The paper's Fig 3 dimensional model: fact MedicalMeasures with eight
/// dimensions — PersonalInformation, MedicalCondition, FastingBloods,
/// LimbHealth, ExerciseRoutine, BloodPressure, ECG and Cardinality —
/// with the age-band hierarchy used by the Fig 5 drill-down.
warehouse::StarSchemaDef MakeDiscriSchemaDef();

/// Runs the pipeline on a raw extract in place, then builds the Fig 3
/// warehouse from it. `report` (optional) receives the transform
/// accounting.
Result<warehouse::Warehouse> BuildDiscriWarehouse(
    Table* raw, etl::TransformReport* report = nullptr);

}  // namespace ddgms::discri

#endif  // DDGMS_DISCRI_MODEL_H_
