#ifndef DDGMS_KB_KNOWLEDGE_BASE_H_
#define DDGMS_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::kb {

/// Lifecycle of a finding: candidate until enough evidence accumulates,
/// then accepted; findings contradicted by later analyses are retired.
enum class FindingStatus {
  kCandidate,
  kAccepted,
  kRetired,
};

const char* FindingStatusName(FindingStatus status);

/// One unit of derived clinical knowledge (paper §IV Knowledge Base:
/// "outcomes ... are initially maintained within the warehouse and
/// transferred into a knowledge base when sufficient data-based evidence
/// is accumulated").
struct Finding {
  int64_t id = 0;
  std::string statement;           // human-readable insight
  std::string source;              // which feature produced it (olap,
                                   // analytics, prediction, optimisation)
  std::vector<std::string> tags;   // e.g. {"diabetes", "age", "gender"}
  size_t evidence_count = 0;       // independent supporting analyses
  double confidence = 0.0;         // caller-supplied score in [0,1]
  FindingStatus status = FindingStatus::kCandidate;
};

struct KnowledgeBaseOptions {
  /// Evidence count at which a candidate auto-promotes to accepted.
  size_t promotion_threshold = 3;
  /// Minimum confidence required for promotion.
  double promotion_confidence = 0.5;
};

/// In-memory knowledge base with evidence-driven promotion. Findings are
/// deduplicated by statement: recording an existing statement adds
/// evidence (and keeps the max confidence) instead of duplicating.
class KnowledgeBase {
 public:
  KnowledgeBase() : options_(KnowledgeBaseOptions()) {}
  explicit KnowledgeBase(KnowledgeBaseOptions options)
      : options_(options) {}

  /// Records one supporting analysis for a statement. Returns the
  /// finding id. New statements enter as candidates with evidence 1.
  int64_t RecordEvidence(const std::string& statement,
                         const std::string& source, double confidence,
                         std::vector<std::string> tags = {});

  /// Marks a finding retired (e.g. contradicted by later analysis).
  Status Retire(int64_t id);

  Result<Finding> Get(int64_t id) const;

  size_t size() const { return findings_.size(); }

  /// All findings, optionally filtered by status.
  std::vector<Finding> All() const { return findings_; }
  std::vector<Finding> WithStatus(FindingStatus status) const;

  /// Findings carrying a tag.
  std::vector<Finding> WithTag(const std::string& tag) const;

  /// Serializes to a table (Id, Statement, Source, Tags, Evidence,
  /// Confidence, Status) for reporting / warehouse feedback.
  Result<Table> ToTable() const;

  /// CSV round-trip for persistence.
  std::string ToCsv() const;
  static Result<KnowledgeBase> FromCsv(const std::string& text,
                                       KnowledgeBaseOptions options = {});

 private:
  void MaybePromote(Finding* finding);

  KnowledgeBaseOptions options_;
  std::vector<Finding> findings_;
  int64_t next_id_ = 1;
};

}  // namespace ddgms::kb

#endif  // DDGMS_KB_KNOWLEDGE_BASE_H_
