#include "kb/knowledge_base.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace ddgms::kb {

const char* FindingStatusName(FindingStatus status) {
  switch (status) {
    case FindingStatus::kCandidate: return "candidate";
    case FindingStatus::kAccepted: return "accepted";
    case FindingStatus::kRetired: return "retired";
  }
  return "unknown";
}

namespace {

Result<FindingStatus> FindingStatusFromName(const std::string& name) {
  if (name == "candidate") return FindingStatus::kCandidate;
  if (name == "accepted") return FindingStatus::kAccepted;
  if (name == "retired") return FindingStatus::kRetired;
  return Status::ParseError("unknown finding status '" + name + "'");
}

}  // namespace

int64_t KnowledgeBase::RecordEvidence(const std::string& statement,
                                      const std::string& source,
                                      double confidence,
                                      std::vector<std::string> tags) {
  for (Finding& f : findings_) {
    if (f.statement == statement) {
      ++f.evidence_count;
      f.confidence = std::max(f.confidence, confidence);
      for (const std::string& tag : tags) {
        if (std::find(f.tags.begin(), f.tags.end(), tag) == f.tags.end()) {
          f.tags.push_back(tag);
        }
      }
      MaybePromote(&f);
      return f.id;
    }
  }
  Finding f;
  f.id = next_id_++;
  f.statement = statement;
  f.source = source;
  f.tags = std::move(tags);
  f.evidence_count = 1;
  f.confidence = confidence;
  f.status = FindingStatus::kCandidate;
  MaybePromote(&f);
  findings_.push_back(std::move(f));
  return findings_.back().id;
}

void KnowledgeBase::MaybePromote(Finding* finding) {
  if (finding->status == FindingStatus::kCandidate &&
      finding->evidence_count >= options_.promotion_threshold &&
      finding->confidence >= options_.promotion_confidence) {
    finding->status = FindingStatus::kAccepted;
  }
}

Status KnowledgeBase::Retire(int64_t id) {
  for (Finding& f : findings_) {
    if (f.id == id) {
      f.status = FindingStatus::kRetired;
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("no finding with id %lld",
                                    static_cast<long long>(id)));
}

Result<Finding> KnowledgeBase::Get(int64_t id) const {
  for (const Finding& f : findings_) {
    if (f.id == id) return f;
  }
  return Status::NotFound(StrFormat("no finding with id %lld",
                                    static_cast<long long>(id)));
}

std::vector<Finding> KnowledgeBase::WithStatus(FindingStatus status) const {
  std::vector<Finding> out;
  for (const Finding& f : findings_) {
    if (f.status == status) out.push_back(f);
  }
  return out;
}

std::vector<Finding> KnowledgeBase::WithTag(const std::string& tag) const {
  std::vector<Finding> out;
  for (const Finding& f : findings_) {
    if (std::find(f.tags.begin(), f.tags.end(), tag) != f.tags.end()) {
      out.push_back(f);
    }
  }
  return out;
}

Result<Table> KnowledgeBase::ToTable() const {
  DDGMS_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field{"Id", DataType::kInt64},
                    Field{"Statement", DataType::kString},
                    Field{"Source", DataType::kString},
                    Field{"Tags", DataType::kString},
                    Field{"Evidence", DataType::kInt64},
                    Field{"Confidence", DataType::kDouble},
                    Field{"Status", DataType::kString}}));
  Table out(std::move(schema));
  for (const Finding& f : findings_) {
    DDGMS_RETURN_IF_ERROR(out.AppendRow(
        {Value::Int(f.id), Value::Str(f.statement), Value::Str(f.source),
         Value::Str(Join(f.tags, ";")),
         Value::Int(static_cast<int64_t>(f.evidence_count)),
         Value::Real(f.confidence),
         Value::Str(FindingStatusName(f.status))}));
  }
  return out;
}

std::string KnowledgeBase::ToCsv() const {
  std::string out = "id,statement,source,tags,evidence,confidence,status\n";
  for (const Finding& f : findings_) {
    out += FormatCsvLine(
        {std::to_string(f.id), f.statement, f.source, Join(f.tags, ";"),
         std::to_string(f.evidence_count), FormatDouble(f.confidence),
         FindingStatusName(f.status)});
    out += "\n";
  }
  return out;
}

Result<KnowledgeBase> KnowledgeBase::FromCsv(
    const std::string& text, KnowledgeBaseOptions options) {
  DDGMS_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("empty knowledge base CSV");
  }
  KnowledgeBase kb(options);
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 7) {
      return Status::ParseError(
          StrFormat("knowledge base row %zu has %zu fields; want 7", i,
                    rows[i].size()));
    }
    Finding f;
    DDGMS_ASSIGN_OR_RETURN(f.id, ParseInt64(rows[i][0]));
    f.statement = rows[i][1];
    f.source = rows[i][2];
    if (!rows[i][3].empty()) {
      f.tags = Split(rows[i][3], ';');
    }
    DDGMS_ASSIGN_OR_RETURN(int64_t evidence, ParseInt64(rows[i][4]));
    f.evidence_count = static_cast<size_t>(evidence);
    DDGMS_ASSIGN_OR_RETURN(f.confidence, ParseDouble(rows[i][5]));
    DDGMS_ASSIGN_OR_RETURN(f.status, FindingStatusFromName(rows[i][6]));
    kb.next_id_ = std::max(kb.next_id_, f.id + 1);
    kb.findings_.push_back(std::move(f));
  }
  return kb;
}

}  // namespace ddgms::kb
