#include "common/trace.h"

#include <algorithm>
#include <unordered_map>

#include "common/annotations.h"
#include "common/strings.h"

namespace ddgms {

std::atomic<bool> TraceCollector::enabled_{false};

namespace {

/// Per-thread innermost live span, for parent/child wiring. The parent
/// of the innermost span is tracked alongside so the event log can
/// stamp records with both ids without walking span objects.
thread_local uint64_t tls_current_span = 0;
thread_local uint64_t tls_parent_span = 0;
thread_local int tls_depth = 0;

std::string FormatDuration(uint64_t micros) {
  if (micros < 1000) {
    return StrFormat("%llu us", static_cast<unsigned long long>(micros));
  }
  if (micros < 1000000) {
    return StrFormat("%.2f ms", static_cast<double>(micros) / 1000.0);
  }
  return StrFormat("%.2f s", static_cast<double>(micros) / 1e6);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceCollector::set_capacity(size_t capacity) {
  MutexLock lock(mu_);
  if (capacity == 0) capacity = 1;
  if (capacity < ring_.size()) {
    // Keep the newest `capacity` spans, restore chronological layout.
    std::vector<SpanRecord> kept;
    kept.reserve(capacity);
    size_t n = ring_.size();
    for (size_t i = n - capacity; i < n; ++i) {
      kept.push_back(std::move(ring_[(head_ + i) % n]));
    }
    dropped_ += n - capacity;
    ring_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = capacity;
}

size_t TraceCollector::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

// Every span destructor lands here — per-query at the coarse spans,
// per-operation at the fine ones.
DDGMS_HOT void TraceCollector::Record(SpanRecord record) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    // Reserving the full ring up front keeps the warm-up appends from
    // reallocating under the collector lock.
    ring_.reserve(capacity_);
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<SpanRecord> TraceCollector::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(head_ + i) % n]);
  }
  return out;
}

std::vector<SpanRecord> TraceCollector::Drain() {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(ring_[(head_ + i) % n]));
  }
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  return out;
}

uint64_t TraceCollector::CurrentSpanId() { return tls_current_span; }

uint64_t TraceCollector::CurrentParentSpanId() { return tls_parent_span; }

size_t TraceCollector::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

size_t TraceCollector::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TraceCollector::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::string TraceCollector::ToString() const {
  std::vector<SpanRecord> spans = Snapshot();
  size_t evicted = dropped();
  std::string out = StrFormat(
      "trace: %zu spans%s\n", spans.size(),
      evicted > 0 ? StrFormat(" (%zu evicted)", evicted).c_str() : "");
  if (spans.empty()) return out;

  // Children grouped by parent, each group ordered by start time.
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) by_id.emplace(s.id, &s);
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id) > 0) {
      children[s.parent_id].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_us != b->start_us ? a->start_us < b->start_us
                                      : a->id < b->id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }

  // Depth-first render.
  struct Frame {
    const SpanRecord* span;
    int indent;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    out += std::string(static_cast<size_t>(frame.indent) * 2, ' ');
    out += StrFormat("%-*s %10s", 40 - frame.indent * 2,
                     frame.span->name.c_str(),
                     FormatDuration(frame.span->duration_us).c_str());
    if (!frame.span->attributes.empty()) {
      out += "  {";
      for (size_t i = 0; i < frame.span->attributes.size(); ++i) {
        if (i > 0) out += ", ";
        out += frame.span->attributes[i].first + "=" +
               frame.span->attributes[i].second;
      }
      out += "}";
    }
    out += "\n";
    auto it = children.find(frame.span->id);
    if (it != children.end()) {
      for (auto kid = it->second.rbegin(); kid != it->second.rend();
           ++kid) {
        stack.push_back({*kid, frame.indent + 1});
      }
    }
  }
  return out;
}

std::string TraceCollector::ToJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"id\":%llu,\"parent\":%llu,\"depth\":%d,\"name\":\"%s\","
        "\"start_us\":%llu,\"duration_us\":%llu,\"attributes\":{",
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent_id), s.depth,
        JsonEscape(s.name).c_str(),
        static_cast<unsigned long long>(s.start_us),
        static_cast<unsigned long long>(s.duration_us));
    for (size_t a = 0; a < s.attributes.size(); ++a) {
      if (a > 0) out += ",";
      out += "\"";
      out += JsonEscape(s.attributes[a].first);
      out += "\":\"";
      out += JsonEscape(s.attributes[a].second);
      out += "\"";
    }
    out += "}}";
  }
  out += "]";
  return out;
}

TraceSpan::TraceSpan(const char* name) {
  if (!TraceCollector::Enabled()) return;
  active_ = true;
  TraceCollector& collector = TraceCollector::Global();
  record_.id = collector.NextId();
  record_.parent_id = tls_current_span;
  record_.depth = tls_depth;
  record_.name = name;
  record_.start_us = collector.NowMicros();
  start_ = std::chrono::steady_clock::now();
  saved_parent_ = tls_current_span;
  saved_grandparent_ = tls_parent_span;
  saved_depth_ = tls_depth;
  tls_parent_span = tls_current_span;
  tls_current_span = record_.id;
  tls_depth = tls_depth + 1;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  tls_current_span = saved_parent_;
  tls_parent_span = saved_grandparent_;
  tls_depth = saved_depth_;
  record_.duration_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  TraceCollector::Global().Record(std::move(record_));
}

void TraceSpan::SetAttribute(const std::string& key, std::string value) {
  if (!active_) return;
  record_.attributes.emplace_back(key, std::move(value));
}

void TraceSpan::SetAttribute(const std::string& key, double value) {
  if (!active_) return;
  SetAttribute(key, FormatDouble(value));
}

}  // namespace ddgms
