#include "common/query_registry.h"

#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ddgms {

std::atomic<bool> QueryRegistry::enabled_{false};

namespace {

/// The query the calling thread is currently executing (0 when none);
/// maintained by ScopedQueryRecord so deep layers (mdx/executor) can
/// report stages without threading an id through every signature.
thread_local uint64_t tls_current_query_id = 0;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* registry = new QueryRegistry();
  return *registry;
}

uint64_t QueryRegistry::Begin(const std::string& kind,
                              const std::string& text) {
  if (!Enabled()) return 0;
  Record record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.kind = kind;
  record.text = text;
  record.span_id = TraceCollector::CurrentSpanId();
  record.start = std::chrono::steady_clock::now();
  record.baseline_bytes = ResourceMeter::Global().root().allocated();
  const uint64_t id = record.id;
  size_t active_now = 0;
  {
    MutexLock lock(mu_);
    active_now = inflight_.size() + 1;
    inflight_.emplace(id, std::move(record));
  }
  DDGMS_METRIC_INC("ddgms.queries.started");
  DDGMS_METRIC_GAUGE_SET("ddgms.queries.active",
                         static_cast<double>(active_now));
  return id;
}

void QueryRegistry::SetStage(uint64_t id, const std::string& stage) {
  if (id == 0) return;
  MutexLock lock(mu_);
  auto it = inflight_.find(id);
  if (it != inflight_.end()) it->second.stage = stage;
}

void QueryRegistry::SetCurrentStage(const std::string& stage) {
  if (tls_current_query_id != 0) {
    Global().SetStage(tls_current_query_id, stage);
  }
}

void QueryRegistry::End(uint64_t id) {
  if (id == 0) return;
  const auto now = std::chrono::steady_clock::now();
  size_t active_now = 0;
  size_t stalled_now = 0;
  bool found = false;
  {
    MutexLock lock(mu_);
    auto it = inflight_.find(id);
    found = it != inflight_.end();
    if (found) {
      if (history_capacity_ > 0) {
        const Record& record = it->second;
        CompletedQuerySnapshot done;
        done.id = record.id;
        done.kind = record.kind;
        done.text = record.text;
        done.span_id = record.span_id;
        done.stage = record.stage;
        done.duration_ms =
            std::chrono::duration<double, std::milli>(now - record.start)
                .count();
        done.stalled = record.stalled;
        history_.push_back(std::move(done));
        while (history_.size() > history_capacity_) history_.pop_front();
      }
      inflight_.erase(it);
    }
    active_now = inflight_.size();
    for (const auto& [unused, record] : inflight_) {
      if (record.stalled) ++stalled_now;
    }
  }
  if (!found) return;
  DDGMS_METRIC_INC("ddgms.queries.finished");
  DDGMS_METRIC_GAUGE_SET("ddgms.queries.active",
                         static_cast<double>(active_now));
  DDGMS_METRIC_GAUGE_SET("ddgms.queries.stalled",
                         static_cast<double>(stalled_now));
}

InflightQuerySnapshot QueryRegistry::SnapshotRecord(
    const Record& record,
    std::chrono::steady_clock::time_point now) const {
  InflightQuerySnapshot snapshot;
  snapshot.id = record.id;
  snapshot.kind = record.kind;
  snapshot.text = record.text;
  snapshot.span_id = record.span_id;
  snapshot.stage = record.stage;
  snapshot.elapsed_ms =
      std::chrono::duration<double, std::milli>(now - record.start)
          .count();
  snapshot.resource_delta_bytes =
      static_cast<int64_t>(ResourceMeter::Global().root().allocated()) -
      static_cast<int64_t>(record.baseline_bytes);
  snapshot.stalled = record.stalled;
  return snapshot;
}

std::vector<InflightQuerySnapshot> QueryRegistry::Snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(mu_);
  std::vector<InflightQuerySnapshot> out;
  out.reserve(inflight_.size());
  for (const auto& [unused, record] : inflight_) {
    out.push_back(SnapshotRecord(record, now));
  }
  return out;
}

std::string QueryRegistry::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const InflightQuerySnapshot& q : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"id\":%llu,\"kind\":\"%s\",\"text\":\"%s\","
        "\"span_id\":%llu,\"stage\":\"%s\",\"elapsed_ms\":%s,"
        "\"resource_delta_bytes\":%lld,\"stalled\":%s}",
        static_cast<unsigned long long>(q.id),
        JsonEscape(q.kind).c_str(), JsonEscape(q.text).c_str(),
        static_cast<unsigned long long>(q.span_id),
        JsonEscape(q.stage).c_str(),
        FormatDouble(q.elapsed_ms, 3).c_str(),
        static_cast<long long>(q.resource_delta_bytes),
        q.stalled ? "true" : "false");
  }
  out += "]";
  return out;
}

std::vector<CompletedQuerySnapshot> QueryRegistry::History() const {
  MutexLock lock(mu_);
  return std::vector<CompletedQuerySnapshot>(history_.begin(),
                                             history_.end());
}

std::string QueryRegistry::HistoryToJson() const {
  std::string out = "[";
  bool first = true;
  for (const CompletedQuerySnapshot& q : History()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"id\":%llu,\"kind\":\"%s\",\"text\":\"%s\","
        "\"span_id\":%llu,\"stage\":\"%s\",\"duration_ms\":%s,"
        "\"stalled\":%s}",
        static_cast<unsigned long long>(q.id),
        JsonEscape(q.kind).c_str(), JsonEscape(q.text).c_str(),
        static_cast<unsigned long long>(q.span_id),
        JsonEscape(q.stage).c_str(),
        FormatDouble(q.duration_ms, 3).c_str(),
        q.stalled ? "true" : "false");
  }
  out += "]";
  return out;
}

size_t QueryRegistry::history_capacity() const {
  MutexLock lock(mu_);
  return history_capacity_;
}

void QueryRegistry::set_history_capacity(size_t capacity) {
  MutexLock lock(mu_);
  history_capacity_ = capacity;
  while (history_.size() > history_capacity_) history_.pop_front();
}

size_t QueryRegistry::history_size() const {
  MutexLock lock(mu_);
  return history_.size();
}

size_t QueryRegistry::active() const {
  MutexLock lock(mu_);
  return inflight_.size();
}

void QueryRegistry::Sweep(int deadline_ms) {
  const auto now = std::chrono::steady_clock::now();
  // Collect the newly-over-deadline records under the lock, log after
  // releasing it (the event log takes its own lock).
  std::vector<InflightQuerySnapshot> newly_stalled;
  size_t stalled_now = 0;
  {
    MutexLock lock(mu_);
    for (auto& [unused, record] : inflight_) {
      if (record.stalled) {
        ++stalled_now;
        continue;
      }
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - record.start)
              .count();
      if (elapsed_ms > deadline_ms) {
        record.stalled = true;
        ++stalled_now;
        newly_stalled.push_back(SnapshotRecord(record, now));
      }
    }
  }
  for (const InflightQuerySnapshot& q : newly_stalled) {
    stalled_total_.fetch_add(1, std::memory_order_relaxed);
    DDGMS_METRIC_INC("ddgms.queries.stalled_total");
    DDGMS_LOG_WARN("mdx.stalled")
        .With("query_id", q.id)
        .With("kind", q.kind)
        .With("text", q.text)
        .With("stage", q.stage)
        .With("elapsed_ms", q.elapsed_ms)
        .With("deadline_ms", deadline_ms);
  }
  DDGMS_METRIC_GAUGE_SET("ddgms.queries.stalled",
                         static_cast<double>(stalled_now));
}

void QueryRegistry::WatchdogLoop(QueryWatchdogOptions options) {
  for (;;) {
    {
      MutexLock lock(mu_);
      watchdog_cv_.WaitFor(
          mu_, std::chrono::milliseconds(options.poll_ms), [this] {
            return watchdog_stop_.load(std::memory_order_relaxed);
          });
    }
    if (watchdog_stop_.load(std::memory_order_relaxed)) return;
    Sweep(options.deadline_ms);
  }
}

Status QueryRegistry::StartWatchdog(QueryWatchdogOptions options) {
  if (options.deadline_ms <= 0 || options.poll_ms <= 0) {
    return Status::InvalidArgument(
        "watchdog deadline_ms and poll_ms must be positive");
  }
  {
    MutexLock lock(mu_);
    if (watchdog_running_) {
      return Status::FailedPrecondition("watchdog already running");
    }
    watchdog_running_ = true;
  }
  watchdog_stop_.store(false, std::memory_order_relaxed);
  watchdog_ = std::thread([this, options] { WatchdogLoop(options); });
  DDGMS_LOG_INFO("queries.watchdog_start")
      .With("deadline_ms", options.deadline_ms)
      .With("poll_ms", options.poll_ms);
  return Status::OK();
}

Status QueryRegistry::StopWatchdog() {
  {
    MutexLock lock(mu_);
    if (!watchdog_running_) {
      return Status::FailedPrecondition("watchdog not running");
    }
  }
  watchdog_stop_.store(true, std::memory_order_relaxed);
  watchdog_cv_.NotifyAll();
  watchdog_.join();
  {
    MutexLock lock(mu_);
    watchdog_running_ = false;
  }
  DDGMS_LOG_INFO("queries.watchdog_stop");
  return Status::OK();
}

bool QueryRegistry::watchdog_running() const {
  MutexLock lock(mu_);
  return watchdog_running_;
}

void QueryRegistry::ResetForTesting() {
  MutexLock lock(mu_);
  inflight_.clear();
  history_.clear();
  stalled_total_.store(0, std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
}

ScopedQueryRecord::ScopedQueryRecord(const std::string& kind,
                                     const std::string& text) {
  id_ = QueryRegistry::Global().Begin(kind, text);
  previous_tls_id_ = tls_current_query_id;
  if (id_ != 0) tls_current_query_id = id_;
}

ScopedQueryRecord::~ScopedQueryRecord() {
  if (id_ != 0) {
    QueryRegistry::Global().End(id_);
    tls_current_query_id = previous_tls_id_;
  }
}

}  // namespace ddgms
