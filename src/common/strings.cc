#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ddgms {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view input, char delim) {
  std::vector<std::string> out = Split(input, delim);
  for (std::string& s : out) {
    s = std::string(Trim(s));
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && IsSpace(input[begin])) ++begin;
  while (end > begin && IsSpace(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<double> ParseDouble(std::string_view text) {
  std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not a double");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("double out of range: '" + trimmed + "'");
  }
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("not a double: '" + trimmed + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: '" + trimmed + "'");
  }
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("not an integer: '" + trimmed + "'");
  }
  return static_cast<int64_t>(value);
}

Result<bool> ParseBool(std::string_view text) {
  std::string lower = ToLower(Trim(text));
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "y") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "n") {
    return false;
  }
  return Status::ParseError("not a bool: '" + lower + "'");
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ddgms
