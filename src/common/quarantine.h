#ifndef DDGMS_COMMON_QUARANTINE_H_
#define DDGMS_COMMON_QUARANTINE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace ddgms {

/// How a loading/transformation stage reacts to bad input.
///
///   kStrict  — fail fast on the first error (historical behaviour, and
///              still the default everywhere).
///   kLenient — quarantine the offending row and keep going; the load
///              completes with every bad row itemised in a
///              QuarantineReport instead of aborting.
enum class ErrorMode {
  kStrict,
  kLenient,
};

/// One row set aside by a lenient stage, with enough context to act on:
/// which stage rejected it, where it was, which field was at fault, and
/// the Status explaining why.
struct QuarantinedRow {
  /// Stage taxonomy, shared across layers: "csv-parse", "csv-ingest",
  /// "etl:<step>", "star-schema".
  std::string stage;
  /// 1-based row/record number within the stage's input (see each
  /// stage's documentation for exactly which sequence it numbers).
  size_t row_number = 0;
  /// Offending column/field name, when attributable to one.
  std::string field;
  /// Why the row was quarantined (never OK).
  Status status;
  /// Truncated raw content of the row, when available.
  std::string raw;

  /// "[stage] row N (field 'F'): Code: message -- raw".
  std::string ToString() const;
};

/// Accumulates quarantined rows across stages of a load. Itemisation is
/// capped (default 1000 rows) so a totally corrupt bulk load cannot
/// balloon memory; rows past the cap are still counted.
class QuarantineReport {
 public:
  QuarantineReport() = default;

  /// Records one quarantined row (drops detail past the cap but always
  /// counts it).
  void Add(QuarantinedRow row);

  /// Convenience for call sites building the row inline.
  void Add(std::string stage, size_t row_number, std::string field,
           Status status, std::string raw = "");

  /// Folds another report into this one (stage labels are preserved).
  void Merge(const QuarantineReport& other);

  /// Itemised rows (at most capacity()).
  const std::vector<QuarantinedRow>& rows() const { return rows_; }

  /// Total quarantined rows, including any dropped past the cap.
  size_t size() const { return rows_.size() + overflow_; }
  bool empty() const { return rows_.empty() && overflow_ == 0; }

  /// Number of quarantined rows attributed to `stage`.
  size_t CountForStage(const std::string& stage) const;

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  void Clear();

  /// Multi-line human-readable listing ("quarantined N rows" + one line
  /// per itemised row); empty string when nothing was quarantined.
  std::string ToString() const;

 private:
  std::vector<QuarantinedRow> rows_;
  size_t overflow_ = 0;
  size_t capacity_ = 1000;
};

/// Truncates raw row content for quarantine records (keeps logs
/// readable; appends an ellipsis when cut).
std::string TruncateForQuarantine(const std::string& raw,
                                  size_t max_len = 120);

}  // namespace ddgms

#endif  // DDGMS_COMMON_QUARANTINE_H_
