#include "common/quarantine.h"

#include "common/log.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace ddgms {

std::string QuarantinedRow::ToString() const {
  std::string out = StrFormat("[%s] row %zu", stage.c_str(), row_number);
  if (!field.empty()) {
    out += StrFormat(" (field '%s')", field.c_str());
  }
  out += ": " + status.ToString();
  if (!raw.empty()) {
    out += " -- " + raw;
  }
  return out;
}

void QuarantineReport::Add(QuarantinedRow row) {
  if (rows_.size() >= capacity_) {
    ++overflow_;
    return;
  }
  rows_.push_back(std::move(row));
}

void QuarantineReport::Add(std::string stage, size_t row_number,
                           std::string field, Status status,
                           std::string raw) {
  // This overload is the original quarantine event (Merge copies go
  // through Add(QuarantinedRow) and must not re-count), so it feeds
  // the per-stage quarantine counters.
  if (MetricsRegistry::Enabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("ddgms.quarantine.rows").Increment();
    registry.GetCounter("ddgms.quarantine.rows:" + stage).Increment();
  }
  // Like the counters above, this overload is the single origination
  // point for quarantine flight-recorder events (Merge copies do not
  // re-log).
  DDGMS_LOG_WARN("quarantine.row")
      .With("stage", stage)
      .With("row", row_number)
      .With("field", field)
      .Message(status.ToString());
  QuarantinedRow row;
  row.stage = std::move(stage);
  row.row_number = row_number;
  row.field = std::move(field);
  row.status = std::move(status);
  row.raw = std::move(raw);
  Add(std::move(row));
}

void QuarantineReport::Merge(const QuarantineReport& other) {
  for (const QuarantinedRow& row : other.rows_) {
    Add(row);
  }
  overflow_ += other.overflow_;
}

size_t QuarantineReport::CountForStage(const std::string& stage) const {
  size_t count = 0;
  for (const QuarantinedRow& row : rows_) {
    if (row.stage == stage) ++count;
  }
  return count;
}

void QuarantineReport::Clear() {
  rows_.clear();
  overflow_ = 0;
}

std::string QuarantineReport::ToString() const {
  if (empty()) return "";
  std::string out = StrFormat("quarantined %zu rows", size());
  for (const QuarantinedRow& row : rows_) {
    out += "\n  " + row.ToString();
  }
  if (overflow_ > 0) {
    out += StrFormat("\n  ... %zu more rows not itemised (cap %zu)",
                     overflow_, capacity_);
  }
  return out;
}

std::string TruncateForQuarantine(const std::string& raw, size_t max_len) {
  // Flatten control characters so multi-line raw records stay on one
  // report line.
  std::string flat;
  flat.reserve(raw.size());
  for (char c : raw) {
    if (c == '\n' || c == '\r' || c == '\t') {
      if (!flat.empty() && flat.back() != ' ') flat.push_back(' ');
    } else {
      flat.push_back(c);
    }
  }
  while (!flat.empty() && flat.back() == ' ') flat.pop_back();
  if (flat.size() <= max_len) return flat;
  return flat.substr(0, max_len) + "...";
}

}  // namespace ddgms
