#ifndef DDGMS_COMMON_WINDOW_H_
#define DDGMS_COMMON_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Sliding windows
///
/// The metrics registry's counters and histograms are cumulative: they
/// only ever grow, which is right for scrapers but useless for
/// operational judgments ("what is the p99 over the last minute?").
/// WindowRegistry derives *windowed* views from those cumulative
/// instruments without touching their hot paths: a periodic Tick()
/// (driven by the SLO evaluator thread, or by tests with an explicit
/// clock) snapshots each tracked instrument, computes the delta since
/// the previous tick, and files it into the current slot of a ring of
/// per-bucket deltas — one ring per configured window length. Reading
/// a window merges its live buckets, which yields the event rate and,
/// for histograms, interpolated p50/p90/p99 over just that window.
///
/// Like every other observability subsystem the registry is compiled
/// in but inert behind one relaxed atomic gate: while disabled, Tick()
/// is a single predictable branch and no deltas accumulate. The
/// instruments being observed are never mutated — tracking is purely
/// read-side, so the ≤2% disabled-overhead budget of bench_a7 is
/// unaffected by how many windows exist.
///
/// Default window lengths are 60s / 300s / 3600s (1m/5m/1h), each
/// divided into kBucketsPerWindow slots; other lengths can be added
/// per instrument. Time is injectable (TickAt / StatsAt) so tests are
/// deterministic.
/// -------------------------------------------------------------------

/// Merged view of one instrument over one window, as of the last tick.
struct WindowStats {
  std::string instrument;
  int64_t window_seconds = 0;
  /// Seconds of history actually covered (< window_seconds during
  /// ramp-up, right after Enable()).
  double covered_seconds = 0.0;
  /// Events in the window: counter increments, or histogram
  /// observations.
  uint64_t count = 0;
  /// count / covered_seconds (0 when nothing covered yet).
  double rate_per_sec = 0.0;
  /// Histogram-only: sum of observed values in the window.
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Histogram-only: merged per-bucket deltas over the window, with
  /// the tracked histogram's bounds. Empty for counters. Burn-rate
  /// math reads this directly (see FractionAbove).
  HistogramSnapshot merged;

  std::string ToString() const;
};

/// Fraction of a snapshot's observations that fall strictly above
/// `threshold`, estimated by linear interpolation inside the bucket
/// containing the threshold. 0 when the snapshot is empty.
double FractionAbove(const HistogramSnapshot& snapshot, double threshold);

/// The global window registry. All methods are thread-safe.
class WindowRegistry {
 public:
  /// Slots per ring; window lengths shorter than this many seconds
  /// degrade to one-second buckets.
  static constexpr int kBucketsPerWindow = 12;

  static WindowRegistry& Global();

  /// Master switch, independent of MetricsRegistry's (windows can
  /// stay off while raw metrics record, and vice versa).
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Default window lengths: {60, 300, 3600} seconds.
  static const std::vector<int64_t>& DefaultWindowSeconds();

  /// Starts tracking a cumulative counter / histogram from the global
  /// MetricsRegistry over the given windows (defaults when empty).
  /// Idempotent; re-tracking an instrument adds any missing window
  /// lengths. The instrument is created in the metrics registry if it
  /// does not exist yet, so track-before-first-use is fine.
  Status TrackCounter(const std::string& name,
                      const std::vector<int64_t>& window_seconds = {})
      EXCLUDES(mu_);
  Status TrackHistogram(const std::string& name,
                        const std::vector<int64_t>& window_seconds = {})
      EXCLUDES(mu_);

  /// Advances every tracked ring to now: reads each instrument's
  /// cumulative state, files the delta since the last tick into the
  /// current bucket, and zeroes any buckets skipped since then. No-op
  /// while disabled. Tick() uses the steady clock; TickAt() is for
  /// deterministic tests and monotonically non-decreasing times.
  void Tick() EXCLUDES(mu_);
  void TickAt(int64_t now_us) EXCLUDES(mu_);

  /// Merged stats for one instrument over one window length, as of
  /// the last tick. NotFound when the instrument or window is not
  /// tracked.
  Result<WindowStats> Stats(const std::string& name,
                            int64_t window_seconds) const EXCLUDES(mu_);

  /// All tracked (instrument, window) pairs, sorted by name then
  /// window length.
  std::vector<WindowStats> Snapshot() const EXCLUDES(mu_);

  /// {"enabled":...,"instruments":{name:{"60":{...},...}}}
  std::string ToJson() const EXCLUDES(mu_);

  size_t tracked_count() const EXCLUDES(mu_);

  /// Drops all tracked instruments and accumulated deltas.
  void ResetForTesting() EXCLUDES(mu_);

 private:
  /// One window's ring of per-bucket deltas.
  struct Ring {
    int64_t window_seconds = 0;
    int64_t bucket_us = 0;
    /// Absolute bucket index (now_us / bucket_us) the ring is
    /// positioned at; -1 before the first tick.
    int64_t current_bucket = -1;
    std::vector<uint64_t> counts;        // per-slot event deltas
    std::vector<double> sums;            // per-slot value deltas
    std::vector<std::vector<uint64_t>> hist_buckets;  // per-slot
  };

  /// One tracked cumulative instrument and its rings.
  struct Tracked {
    std::string name;
    bool is_histogram = false;
    /// Cumulative state at the previous tick (baseline for deltas).
    uint64_t last_count = 0;
    double last_sum = 0.0;
    std::vector<uint64_t> last_buckets;
    std::vector<double> bounds;  // histogram bounds, fixed at creation
    std::vector<Ring> rings;
  };

  WindowRegistry() = default;

  Status Track(const std::string& name, bool is_histogram,
               const std::vector<int64_t>& window_seconds) EXCLUDES(mu_);
  WindowStats StatsLocked(const Tracked& tracked, const Ring& ring) const
      REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Tracked>> tracked_ GUARDED_BY(mu_);
  int64_t last_tick_us_ GUARDED_BY(mu_) = -1;
  int64_t first_tick_us_ GUARDED_BY(mu_) = -1;
  static std::atomic<bool> enabled_;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_WINDOW_H_
