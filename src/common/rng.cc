#include "common/rng.h"

#include <cmath>

namespace ddgms {

double Rng::NextGaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace ddgms
