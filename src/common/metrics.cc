#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/annotations.h"
#include "common/strings.h"

namespace ddgms {

std::atomic<bool> MetricsRegistry::enabled_{false};

namespace {

constexpr uint64_t kPosInfBits = 0x7ff0000000000000ULL;  // +inf
constexpr uint64_t kNegInfBits = 0xfff0000000000000ULL;  // -inf

double BitsToDouble(uint64_t bits) { return std::bit_cast<double>(bits); }
uint64_t DoubleToBits(double v) { return std::bit_cast<uint64_t>(v); }

/// Lock-free add on a bit-cast double.
void AtomicDoubleAdd(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(
      old_bits, DoubleToBits(BitsToDouble(old_bits) + delta),
      std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMin(std::atomic<uint64_t>* bits, double v) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (BitsToDouble(old_bits) > v &&
         !bits->compare_exchange_weak(old_bits, DoubleToBits(v),
                                      std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<uint64_t>* bits, double v) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (BitsToDouble(old_bits) < v &&
         !bits->compare_exchange_weak(old_bits, DoubleToBits(v),
                                      std::memory_order_relaxed)) {
  }
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string SanitizeForPrometheus(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Text-exposition-format escaping for `# HELP` text: backslash and
/// newline must be escaped (a raw newline would split the comment
/// line and corrupt the exposition).
std::string EscapePrometheusHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Label values additionally escape the double quote that delimits
/// them.
std::string EscapePrometheusLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON number formatting (finite; never locale-dependent here since
/// FormatDouble uses snprintf with the C locale semantics of %g).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return FormatDouble(v, 9);
}

}  // namespace

// The DDGMS_METRIC_* record paths run inside scan/parse loops; they
// must stay lock-free and allocation-free (the analyzer's hot-path
// pass enforces the latter).
DDGMS_HOT void Counter::Increment(uint64_t delta) {
  if (!MetricsRegistry::Enabled()) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

DDGMS_HOT void Gauge::Set(double value) {
  if (!MetricsRegistry::Enabled()) return;
  bits_.store(DoubleToBits(value), std::memory_order_relaxed);
}

DDGMS_HOT void Gauge::Add(double delta) {
  if (!MetricsRegistry::Enabled()) return;
  AtomicDoubleAdd(&bits_, delta);
}

double Gauge::value() const {
  return BitsToDouble(bits_.load(std::memory_order_relaxed));
}

void Gauge::Reset() { bits_.store(0, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_bits_(kPosInfBits),
      max_bits_(kNegInfBits) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()),
                bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {1,     2,     5,      10,     25,     50,     100,    250,
          500,   1000,  2500,   5000,   10000,  25000,  50000,  100000,
          250000, 500000, 1000000, 2500000, 5000000, 10000000};
}

DDGMS_HOT void Histogram::Observe(double value) {
  if (!MetricsRegistry::Enabled()) return;
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // count_ is updated LAST: a concurrent Snapshot() that observes
  // count > 0 then (almost always) sees min/max/sum/bucket updates
  // from at least that many completed observations, instead of e.g.
  // count=1 with min still at the +inf sentinel.
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(&sum_bits_, value);
  AtomicDoubleMin(&min_bits_, value);
  AtomicDoubleMax(&max_bits_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::Snapshot(const std::string& name) const {
  HistogramSnapshot snap;
  snap.name = name;
  snap.bounds = bounds_;
  snap.buckets.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum();
  if (snap.count > 0) {
    const uint64_t min_bits = min_bits_.load(std::memory_order_relaxed);
    const uint64_t max_bits = max_bits_.load(std::memory_order_relaxed);
    // Relaxed ordering means a sampler racing a writer could still
    // catch count ahead of the min/max CAS; never surface the +/-inf
    // sentinels.
    snap.min = min_bits == kPosInfBits ? 0.0 : BitsToDouble(min_bits);
    snap.max = max_bits == kNegInfBits ? 0.0 : BitsToDouble(max_bits);
  }
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(kPosInfBits, std::memory_order_relaxed);
  max_bits_.store(kNegInfBits, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  if (std::isnan(p)) return 0.0;
  if (count == 0 || p <= 0.0) return count == 0 ? 0.0 : min;
  if (p >= 1.0) return max;
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    uint64_t in_bucket = buckets[i];
    if (cumulative + in_bucket < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate within [lower, upper). The overflow bucket is capped
    // at the observed max; the first bucket starts at the observed min.
    double lower = i == 0 ? min : bounds[i - 1];
    double upper = i < bounds.size() ? bounds[i] : max;
    lower = std::min(std::max(lower, min), max);
    upper = std::min(std::max(upper, lower), max);
    double fraction =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, fraction);
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBounds());
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Snapshot(name));
  }
  return snap;  // std::map iteration => already sorted by name
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterValue& c : counters) {
      out += StrFormat("  %-44s %12llu\n", c.name.c_str(),
                       static_cast<unsigned long long>(c.value));
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeValue& g : gauges) {
      out += StrFormat("  %-44s %12s\n", g.name.c_str(),
                       FormatDouble(g.value).c_str());
    }
  }
  if (!histograms.empty()) {
    out += StrFormat("histograms:%34s %10s %10s %10s %10s %10s\n", "count",
                     "mean", "p50", "p95", "p99", "max");
    for (const HistogramSnapshot& h : histograms) {
      out += StrFormat("  %-42s %10llu %10s %10s %10s %10s %10s\n",
                       h.name.c_str(),
                       static_cast<unsigned long long>(h.count),
                       FormatDouble(h.Mean(), 4).c_str(),
                       FormatDouble(h.Percentile(0.5), 4).c_str(),
                       FormatDouble(h.Percentile(0.95), 4).c_str(),
                       FormatDouble(h.Percentile(0.99), 4).c_str(),
                       FormatDouble(h.max, 4).c_str());
    }
  }
  if (out.empty()) out = "no metrics recorded\n";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(counters[i].name);
    out += "\":";
    out += StrFormat("%llu",
                     static_cast<unsigned long long>(counters[i].value));
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(gauges[i].name);
    out += "\":";
    out += JsonNumber(gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(h.name);
    out += "\":{";
    out += StrFormat("\"count\":%llu,",
                     static_cast<unsigned long long>(h.count));
    out += "\"sum\":";
    out += JsonNumber(h.sum);
    out += ",\"min\":";
    out += JsonNumber(h.min);
    out += ",\"max\":";
    out += JsonNumber(h.max);
    out += ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ",";
      out += "{\"le\":";
      out += b < h.bounds.size() ? JsonNumber(h.bounds[b])
                                 : std::string("\"+Inf\"");
      out += StrFormat(",\"count\":%llu}",
                       static_cast<unsigned long long>(h.buckets[b]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const CounterValue& c : counters) {
    std::string name = SanitizeForPrometheus(c.name);
    out += "# HELP " + name + " ddgms counter " +
           EscapePrometheusHelp(c.name) + "\n";
    out += "# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(c.value));
  }
  for (const GaugeValue& g : gauges) {
    std::string name = SanitizeForPrometheus(g.name);
    out += "# HELP " + name + " ddgms gauge " +
           EscapePrometheusHelp(g.name) + "\n";
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += " ";
    out += FormatDouble(g.value, 9);
    out += "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    std::string name = SanitizeForPrometheus(h.name);
    out += "# HELP " + name + " ddgms histogram " +
           EscapePrometheusHelp(h.name) + "\n";
    out += "# TYPE ";
    out += name;
    out += " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out += name;
      out += "_bucket{le=\"";
      out += EscapePrometheusLabelValue(
          b < h.bounds.size() ? FormatDouble(h.bounds[b], 9)
                              : std::string("+Inf"));
      out += StrFormat("\"} %llu\n",
                       static_cast<unsigned long long>(cumulative));
    }
    out += name;
    out += "_sum ";
    out += FormatDouble(h.sum, 9);
    out += "\n";
    // The exposition format requires _count == the +Inf bucket. The
    // snapshot's count field is read from a separate atomic than the
    // bucket array, so under concurrent observation the two can skew
    // by an in-flight observation — emit the bucket sum for both.
    out += name;
    out += StrFormat("_count %llu\n",
                     static_cast<unsigned long long>(cumulative));
  }
  return out;
}

ScopedLatencyTimer::ScopedLatencyTimer(const char* histogram_name)
    : name_(histogram_name) {
  if (!MetricsRegistry::Enabled()) return;
  active_ = true;
  start_ = std::chrono::steady_clock::now();
}

double ScopedLatencyTimer::ElapsedMicros() const {
  if (!active_) return 0.0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (!active_) return;
  MetricsRegistry::Global().GetHistogram(name_).Observe(ElapsedMicros());
}

}  // namespace ddgms
