#ifndef DDGMS_COMMON_QUERY_REGISTRY_H_
#define DDGMS_COMMON_QUERY_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Live query registry + stall watchdog
///
/// Every MDX query the core facade runs registers an in-flight record
/// here (query text, correlated span id, start time, resource-meter
/// baseline, current execution stage). The observability server's
/// /queryz endpoint snapshots the table, so an operator can see what
/// the process is doing *right now* — not just what it did.
///
/// A watchdog thread sweeps the table on a poll interval and flags
/// each record that has been in flight longer than a configurable
/// deadline, exactly once: it emits an "mdx.stalled" flight-recorder
/// event, bumps the ddgms.queries.stalled_total counter and keeps the
/// ddgms.queries.stalled gauge at the number of currently-stalled
/// in-flight queries (the gauge drops when a stalled query finally
/// finishes).
///
/// Finished queries move into a bounded completed-query history
/// (oldest evicted at capacity, default 128), so /queryz shows the
/// recent past as well as the present without ever growing unbounded
/// under sustained load.
///
/// Like the metrics / trace / log registries, the whole subsystem is
/// inert behind one relaxed atomic gate until Enable() is called (the
/// shell does this at startup), so library users pay one predictable
/// branch per query.
/// -------------------------------------------------------------------

/// Point-in-time view of one in-flight query.
struct InflightQuerySnapshot {
  uint64_t id = 0;          // registry-assigned, monotonic
  std::string kind;         // "mdx", "sql", ...
  std::string text;         // the query source text
  uint64_t span_id = 0;     // innermost trace span at Begin()
  std::string stage;        // "start", "parse", "compile", "execute"
  double elapsed_ms = 0.0;
  /// Bytes the global ResourceMeter root pool grew since Begin().
  /// Signed: other work finishing concurrently can shrink the pool.
  int64_t resource_delta_bytes = 0;
  bool stalled = false;     // already flagged by the watchdog
};

/// One finished query as kept in the bounded history ring.
struct CompletedQuerySnapshot {
  uint64_t id = 0;
  std::string kind;
  std::string text;
  uint64_t span_id = 0;
  /// Stage the query was in when it finished ("execute" normally).
  std::string stage;
  double duration_ms = 0.0;
  bool stalled = false;  // was ever flagged by the watchdog
};

struct QueryWatchdogOptions {
  /// A query in flight longer than this is flagged as stalled.
  int deadline_ms = 10000;
  /// Sweep interval.
  int poll_ms = 100;
};

/// The global in-flight table. All methods are thread-safe.
class QueryRegistry {
 public:
  static QueryRegistry& Global();

  /// Master switch (one relaxed atomic; same idiom as MetricsRegistry).
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Registers an in-flight query; returns its id (never 0). Captures
  /// the current trace span id and the resource-meter baseline.
  /// Returns 0 without registering when the registry is disabled —
  /// End(0)/SetStage(0, ...) are no-ops, so call sites need no branch.
  uint64_t Begin(const std::string& kind, const std::string& text)
      EXCLUDES(mu_);

  /// Updates the execution stage shown in /queryz. Unknown or zero ids
  /// are ignored.
  void SetStage(uint64_t id, const std::string& stage) EXCLUDES(mu_);

  /// Stage update for the query the calling thread is currently
  /// running (tracked thread-locally by ScopedQueryRecord); no-op when
  /// the thread has no registered query. This is how mdx/executor
  /// reports parse/compile/execute boundaries without a core
  /// dependency.
  static void SetCurrentStage(const std::string& stage);

  /// Deregisters; recomputes the stalled gauge. Id 0 is a no-op.
  void End(uint64_t id) EXCLUDES(mu_);

  /// All in-flight queries, oldest first.
  std::vector<InflightQuerySnapshot> Snapshot() const EXCLUDES(mu_);

  /// Recently finished queries, oldest first (at most
  /// history_capacity()).
  std::vector<CompletedQuerySnapshot> History() const EXCLUDES(mu_);

  /// JSON array for /queryz.
  std::string ToJson() const;
  /// JSON array of the completed-query history for /queryz.
  std::string HistoryToJson() const;

  /// Bounded history size. Shrinking evicts the oldest records; 0
  /// disables history entirely.
  size_t history_capacity() const EXCLUDES(mu_);
  void set_history_capacity(size_t capacity) EXCLUDES(mu_);
  size_t history_size() const EXCLUDES(mu_);

  size_t active() const EXCLUDES(mu_);
  /// Queries ever flagged as stalled (monotonic).
  uint64_t stalled_total() const {
    return stalled_total_.load(std::memory_order_relaxed);
  }

  /// Spawns the watchdog thread. FailedPrecondition when already
  /// running or `options` is non-positive.
  Status StartWatchdog(QueryWatchdogOptions options = {}) EXCLUDES(mu_);
  /// Joins the watchdog. FailedPrecondition when not running.
  Status StopWatchdog() EXCLUDES(mu_);
  bool watchdog_running() const EXCLUDES(mu_);

  /// One synchronous watchdog sweep with an explicit deadline —
  /// deterministic tests drive this instead of racing the thread.
  void SweepForTesting(int deadline_ms) { Sweep(deadline_ms); }

  /// Drops every record and resets counters. Tests only; never call
  /// with queries in flight.
  void ResetForTesting() EXCLUDES(mu_);

 private:
  struct Record {
    uint64_t id = 0;
    std::string kind;
    std::string text;
    uint64_t span_id = 0;
    std::chrono::steady_clock::time_point start;
    uint64_t baseline_bytes = 0;
    std::string stage = "start";
    bool stalled = false;
  };

  QueryRegistry() = default;

  /// Flags over-deadline records (each exactly once) and refreshes the
  /// stalled gauge.
  void Sweep(int deadline_ms) EXCLUDES(mu_);
  void WatchdogLoop(QueryWatchdogOptions options);

  InflightQuerySnapshot SnapshotRecord(
      const Record& record,
      std::chrono::steady_clock::time_point now) const;

  mutable Mutex mu_;
  std::map<uint64_t, Record> inflight_ GUARDED_BY(mu_);
  std::deque<CompletedQuerySnapshot> history_ GUARDED_BY(mu_);
  size_t history_capacity_ GUARDED_BY(mu_) = 128;
  bool watchdog_running_ GUARDED_BY(mu_) = false;
  std::thread watchdog_;
  CondVar watchdog_cv_;
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> stalled_total_{0};
  static std::atomic<bool> enabled_;
};

/// RAII registration: Begin() on construction, End() on destruction,
/// and maintains the thread-local "current query" id SetCurrentStage()
/// targets (saving/restoring the previous one, so nested queries —
/// e.g. EXPLAIN driving a real execution — attribute stages to the
/// innermost record).
class ScopedQueryRecord {
 public:
  ScopedQueryRecord(const std::string& kind, const std::string& text);
  ~ScopedQueryRecord();

  ScopedQueryRecord(const ScopedQueryRecord&) = delete;
  ScopedQueryRecord& operator=(const ScopedQueryRecord&) = delete;

  /// 0 when the registry was disabled at construction.
  uint64_t id() const { return id_; }

 private:
  uint64_t id_ = 0;
  uint64_t previous_tls_id_ = 0;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_QUERY_REGISTRY_H_
