#ifndef DDGMS_COMMON_PROFILER_H_
#define DDGMS_COMMON_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Sampling wall-clock profiler
///
/// A signal/timer-based stack sampler: Start() arms an interval timer
/// (ITIMER_REAL) that delivers SIGALRM at the configured frequency;
/// the handler captures the interrupted thread's call stack into a
/// pre-allocated bounded ring (oldest samples overwritten), tagged
/// with the thread's innermost live TraceSpan id and a timestamp on
/// the TraceCollector timeline — so profiles, spans and the event log
/// all correlate.
///
/// The handler performs no allocation and no locking: one relaxed
/// fetch_add reserves a slot, backtrace(3) fills the pre-allocated
/// frame slab, and a clock read stamps it. Everything expensive
/// (symbolization via dladdr + demangling, aggregation) happens in
/// Dump(), which requires the profiler to be stopped.
///
/// Exports:
///  * ToCollapsed() — the folded-stack format flamegraph.pl and
///    speedscope consume directly ("main;Execute;scan 57" per line).
///  * ToJson()      — raw samples with symbolized frames + span ids.
///
/// Symbol quality: dladdr resolves dynamic symbols, so link binaries
/// that profile themselves with ENABLE_EXPORTS (the shell, benches
/// and tests do); unresolvable frames render as hex addresses.
///
/// Linux-only (signals + execinfo); Start() returns Unimplemented
/// elsewhere. One process-wide instance: concurrent Start() calls
/// fail with FailedPrecondition.
/// -------------------------------------------------------------------

struct ProfilerOptions {
  /// Sampling frequency. 99 (not 100) so samples do not beat against
  /// common 10ms periodic work.
  int hz = 99;
  /// Ring capacity in samples (~165 s at 99 Hz); oldest overwritten.
  size_t capacity = 16384;
  /// Frames kept per sample; deeper stacks are truncated at the leaf
  /// end kept (outermost frames dropped).
  int max_depth = 32;
};

/// One captured stack, symbolized. Frames are ordered root -> leaf.
struct ProfileStack {
  std::vector<std::string> frames;
  /// TraceSpan id live on the sampled thread (0 = none).
  uint64_t span_id = 0;
  /// Microseconds on the TraceCollector epoch timeline.
  uint64_t time_us = 0;
};

/// Symbolized result of one profiling session.
struct ProfileDump {
  int hz = 0;
  /// Samples taken; `samples.size()` may be smaller when the ring
  /// wrapped (`dropped` = overwritten count).
  uint64_t captured = 0;
  uint64_t dropped = 0;
  std::vector<ProfileStack> samples;

  /// Folded-stack lines ("frame;frame;frame count\n"), sorted, for
  /// flamegraph.pl / speedscope.
  std::string ToCollapsed() const;
  /// {"hz":..,"captured":..,"dropped":..,"samples":[...]}.
  std::string ToJson() const;
  /// One-line human summary ("123 samples @99Hz, 0 dropped").
  std::string Summary() const;
};

class Profiler {
 public:
  static Profiler& Global();

  /// Arms the timer and starts sampling. FailedPrecondition when
  /// already running; Internal when the signal/timer setup fails.
  Status Start(const ProfilerOptions& options = {}) EXCLUDES(mu_);

  /// Disarms the timer and uninstalls the handler. The captured ring
  /// is retained for Dump(). FailedPrecondition when not running.
  Status Stop() EXCLUDES(mu_);

  bool running() const EXCLUDES(mu_);

  /// Samples taken since Start() (live — readable while running).
  uint64_t samples_captured() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Symbolizes and returns the retained ring. FailedPrecondition
  /// while running (stop first — symbolization is not async-safe).
  Result<ProfileDump> Dump() const EXCLUDES(mu_);

  /// Drops retained samples (keeps the profiler stopped).
  void Clear() EXCLUDES(mu_);

 private:
  Profiler() = default;

  static void SignalHandler(int signum);
  void Capture();

  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  ProfilerOptions options_ GUARDED_BY(mu_);
  /// Sample slot reservation counter; slot = index % capacity. The
  /// handler only writes while armed_ is true.
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> armed_{false};
  /// Pre-allocated sample storage (capacity * max_depth frames).
  std::vector<void*> frame_slab_ GUARDED_BY(mu_);
  struct SampleMeta {
    uint64_t time_us;
    uint64_t span_id;
    int depth;
  };
  std::vector<SampleMeta> meta_ GUARDED_BY(mu_);
  /// Raw views of the slabs plus the geometry, published before
  /// arming and constant while armed — the handler reads only these
  /// (never the lock-guarded vectors), so it needs no lock.
  void** armed_frames_ = nullptr;
  SampleMeta* armed_meta_ = nullptr;
  size_t armed_capacity_ = 0;
  int armed_max_depth_ = 0;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_PROFILER_H_
