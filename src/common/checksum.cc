#include "common/checksum.h"

#include <array>

namespace ddgms {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Crc32cTables {
  // table[k][b]: CRC contribution of byte b at lane k of a slice-by-8
  // walk (lane 0 is the classic byte-at-a-time table).
  std::array<std::array<uint32_t, 256>, 8> table;

  Crc32cTables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      table[0][b] = crc;
    }
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = table[0][b];
      for (size_t k = 1; k < 8; ++k) {
        crc = table[0][crc & 0xFF] ^ (crc >> 8);
        table[k][b] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables* tables = new Crc32cTables();
  return *tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().table;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // Slice-by-8 over the aligned middle; byte-at-a-time for the tail.
  while (size >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][(crc >> 24) & 0xFF] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p) & 0xFF] ^ (crc >> 8);
    ++p;
    --size;
  }
  return ~crc;
}

}  // namespace ddgms
