#ifndef DDGMS_COMMON_STRINGS_H_
#define DDGMS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ddgms {

/// Splits `input` on `delim`. Adjacent delimiters yield empty fields;
/// an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits on `delim`, trimming ASCII whitespace from each field.
std::vector<std::string> SplitAndTrim(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower/upper casing (locale-independent).
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

/// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict numeric parsing: the entire string (after trimming) must be a
/// valid number; otherwise a ParseError is returned.
Result<double> ParseDouble(std::string_view text);
Result<int64_t> ParseInt64(std::string_view text);
Result<bool> ParseBool(std::string_view text);

/// Formats a double compactly: integral values print without a fractional
/// part; otherwise up to `precision` significant decimals, trailing zeros
/// trimmed.
std::string FormatDouble(double value, int precision = 6);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ddgms

#endif  // DDGMS_COMMON_STRINGS_H_
