#include "common/date.h"

#include <cstdio>

#include "common/strings.h"

namespace ddgms {

namespace {

// Howard Hinnant's civil-from-days / days-from-civil algorithms.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(m) + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned dd = doy - (153 * mp + 2) / 5 + 1;
  const unsigned mm = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (mm <= 2));
  *m = static_cast<int>(mm);
  *d = static_cast<int>(dd);
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

Result<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument(
        StrFormat("month out of range: %d", month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument(
        StrFormat("day out of range for %d-%02d: %d", year, month, day));
  }
  return Date(static_cast<int32_t>(DaysFromCivil(year, month, day)));
}

Result<Date> Date::FromString(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char tail = '\0';
  int matched =
      std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail);
  if (matched != 3) {
    return Status::ParseError("not a date (want YYYY-MM-DD): '" + text + "'");
  }
  return FromYmd(y, m, d);
}

int Date::year() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return d;
}

std::string Date::ToString() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

}  // namespace ddgms
