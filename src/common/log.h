#ifndef DDGMS_COMMON_LOG_H_
#define DDGMS_COMMON_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Structured event log (the "flight recorder")
///
/// Severity-levelled records with typed key/value fields, automatically
/// stamped with the innermost live TraceSpan id/parent on the emitting
/// thread — so log lines, spans and metrics all join on one span id.
/// Finished records land in a thread-safe bounded in-memory ring
/// (oldest evicted first) and fan out to any registered sinks (stderr
/// text, JSONL file).
///
/// Like common/faults, common/metrics and common/trace the subsystem is
/// compiled in but inert by default: a disabled call site costs one
/// relaxed atomic-bool load and nothing else (no clock read, no string
/// building, no allocation). Call EventLog::Enable() (the shell does
/// this at startup) to start recording.
///
/// Event naming convention mirrors span names: a stable dotted
/// operation identifier, "<layer>.<what>" (e.g. "etl.run",
/// "mdx.slow_query", "quarantine.row"); variable detail goes in fields.
/// -------------------------------------------------------------------

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Canonical lower-case name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// Parses a level name (case-insensitive); ParseError otherwise.
Result<LogLevel> LogLevelFromName(std::string_view name);

/// One typed field value. Strings render quoted in JSON, numbers and
/// bools as bare literals, so downstream consumers keep the types.
class LogValue {
 public:
  LogValue(std::string v) : data_(std::move(v)) {}          // NOLINT
  LogValue(const char* v) : data_(std::string(v)) {}        // NOLINT
  LogValue(double v) : data_(v) {}                          // NOLINT
  LogValue(bool v) : data_(v) {}                            // NOLINT
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  LogValue(T v) : data_(static_cast<int64_t>(v)) {}         // NOLINT

  bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  /// Unquoted human-readable rendering.
  std::string ToString() const;
  /// JSON literal (quoted+escaped for strings; null for non-finite
  /// doubles).
  std::string ToJson() const;

 private:
  std::variant<std::string, int64_t, double, bool> data_;
};

/// One finished record as stored by the ring and handed to sinks.
struct LogRecord {
  /// Monotonic sequence number, assigned at record time under the ring
  /// lock — strictly increasing in ring order, never 0.
  uint64_t seq = 0;
  LogLevel level = LogLevel::kInfo;
  /// Stable dotted event identifier ("warehouse.build").
  std::string event;
  /// Optional free-form human text.
  std::string message;
  /// Innermost live TraceSpan on the emitting thread (0 when none).
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// Emit time in microseconds since the TraceCollector epoch — the
  /// same timeline as SpanRecord::start_us, so records and spans
  /// interleave directly.
  uint64_t time_us = 0;
  std::vector<std::pair<std::string, LogValue>> fields;

  /// "seq=N +T [level] event span=S/P message {k=v, ...}".
  std::string ToString() const;
  /// One JSON object (a JSONL line, without the trailing newline).
  std::string ToJson() const;
};

/// Receives every record accepted by the ring. Write() is called under
/// the EventLog lock — keep implementations fast and do not emit log
/// events from inside a sink.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Human-readable one-line-per-record sink on stderr.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// Appends each record as one JSON line to a file (flushed per record
/// so tail -f and crash post-mortems see complete lines).
class JsonlFileLogSink : public LogSink {
 public:
  /// Opens `path` for appending.
  static Result<std::unique_ptr<JsonlFileLogSink>> Open(
      const std::string& path);
  ~JsonlFileLogSink() override;

  void Write(const LogRecord& record) override;

 private:
  explicit JsonlFileLogSink(std::FILE* file) : file_(file) {}
  std::FILE* file_;
};

/// The global bounded event log. All methods are thread-safe.
class EventLog {
 public:
  static EventLog& Global();

  /// Master switch (one relaxed atomic, shared by all call sites).
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() {
    enabled_.store(false, std::memory_order_relaxed);
  }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Records below this level are dropped at the call site (no record
  /// is built). Default kInfo, so debug-rate events cost nothing until
  /// a session opts in.
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// One check for call sites: enabled AND at/above the minimum level.
  static bool ShouldLog(LogLevel level) {
    return Enabled() && level >= Global().min_level();
  }

  /// Ring capacity (default 2048). Shrinking drops oldest records.
  void set_capacity(size_t capacity) EXCLUDES(mu_);
  size_t capacity() const EXCLUDES(mu_);

  /// Records in ring order (oldest first; seq strictly increasing).
  std::vector<LogRecord> Snapshot() const EXCLUDES(mu_);
  /// Atomically snapshots and empties the ring (for the telemetry
  /// sampler — no record emitted concurrently is lost or duplicated).
  std::vector<LogRecord> Drain() EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  /// Records evicted from the ring since the last Clear()/Drain().
  size_t dropped() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

  /// Sinks receive every accepted record in addition to the ring.
  void AddSink(std::unique_ptr<LogSink> sink) EXCLUDES(mu_);
  void ClearSinks() EXCLUDES(mu_);

  /// Human-readable listing; `tail` > 0 keeps only the newest records.
  std::string ToString(size_t tail = 0) const;
  /// JSONL: one object per line; `tail` as above.
  std::string ToJsonl(size_t tail = 0) const;

  /// Internal (LogEvent): assigns seq + appends, evicting the oldest
  /// when full, then fans out to sinks.
  void Record(LogRecord record) EXCLUDES(mu_);

 private:
  EventLog() = default;

  mutable Mutex mu_;
  std::vector<LogRecord> ring_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_) = 2048;
  /// Next eviction slot once the ring is full.
  size_t head_ GUARDED_BY(mu_) = 0;
  size_t dropped_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::vector<std::unique_ptr<LogSink>> sinks_ GUARDED_BY(mu_);
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  static std::atomic<bool> enabled_;
};

/// Builder for one record: stamps level/event/span ids/time on
/// construction, collects fields via With(), records on destruction
/// (end of the full expression at the call site). Inert — every method
/// a no-op — when the log is disabled or the level is below the
/// minimum at construction.
class LogEvent {
 public:
  LogEvent(LogLevel level, const char* event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  bool active() const { return active_; }

  LogEvent& Message(std::string text) {
    if (active_) record_.message = std::move(text);
    return *this;
  }

  /// Attaches one typed field. Accepts string, const char*, double,
  /// bool and integral values; disabled call sites never build
  /// LogValues.
  template <typename T>
  LogEvent& With(const std::string& key, T&& value) {
    if (active_) {
      record_.fields.emplace_back(key, LogValue(std::forward<T>(value)));
    }
    return *this;
  }

 private:
  bool active_ = false;
  LogRecord record_;
};

/// Call-site helpers matching the DDGMS_METRIC_* idiom: the LogEvent
/// constructor performs the one-relaxed-load gate, so these are plain
/// expression builders:
///   DDGMS_LOG_INFO("warehouse.build").With("fact_rows", n);
#define DDGMS_LOG(level, event) ::ddgms::LogEvent((level), (event))
#define DDGMS_LOG_DEBUG(event) DDGMS_LOG(::ddgms::LogLevel::kDebug, event)
#define DDGMS_LOG_INFO(event) DDGMS_LOG(::ddgms::LogLevel::kInfo, event)
#define DDGMS_LOG_WARN(event) DDGMS_LOG(::ddgms::LogLevel::kWarn, event)
#define DDGMS_LOG_ERROR(event) DDGMS_LOG(::ddgms::LogLevel::kError, event)

}  // namespace ddgms

#endif  // DDGMS_COMMON_LOG_H_
