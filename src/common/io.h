#ifndef DDGMS_COMMON_IO_H_
#define DDGMS_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Durable file I/O
///
/// The primitives under the warehouse durability layer (snapshots,
/// write-ahead journal, MANIFEST). Every step that can tear — open,
/// write, fsync, rename, directory sync — carries a DDGMS_FAULT_POINT
/// so the crash matrix in tests/persist_test.cc can rehearse a failure
/// at each one, and a byte-counting crash hook lets integration tests
/// and CI kill the process mid-write like a real power cut.
///
/// Byte order on disk is little-endian everywhere (the codec below is
/// explicit, so big-endian hosts would still read the same files).
/// -------------------------------------------------------------------

/// Little-endian append-to-string encoders. All multi-byte on-disk
/// integers in the snapshot/journal formats go through these.
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutI32(std::string* out, int32_t v);
/// IEEE-754 bit pattern, so doubles round-trip exactly (including
/// NaN payloads and signed zero).
void PutF64(std::string* out, double v);
/// u32 length prefix + raw bytes.
void PutLengthPrefixed(std::string* out, std::string_view bytes);

/// Bounds-checked little-endian decoder over a byte buffer. Every
/// Read* returns DataLoss on short reads (the buffer ends before the
/// value does) — the "short read" leg of torn-write detection.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<int32_t> ReadI32();
  Result<double> ReadF64();
  /// Next `n` raw bytes (a view into the underlying buffer).
  Result<std::string_view> ReadBytes(size_t n);
  /// u32 length prefix + that many bytes.
  Result<std::string_view> ReadLengthPrefixed();

  /// Skips `n` bytes; DataLoss if fewer remain.
  Status Skip(size_t n);

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

/// Reads an entire file as raw bytes. NotFound if it cannot be opened,
/// DataLoss on a read error.
Result<std::string> ReadFileBinary(const std::string& path);

/// Atomically replaces `path` with `contents`: writes to a sibling
/// temporary file, fsyncs it, renames it over `path`, then fsyncs the
/// parent directory so the rename itself is durable. After a crash at
/// any step, `path` either holds its previous contents or the complete
/// new contents — never a prefix. Set `sync` false to skip the fsyncs
/// (fast, for tests and callers that do not need durability).
Status WriteFileDurable(const std::string& path,
                        std::string_view contents, bool sync = true);

/// fsyncs a directory so previously renamed/created entries survive a
/// crash.
Status SyncDir(const std::string& dir);

/// Truncates `path` to `size` bytes (journal repair after a torn
/// tail).
Status TruncateFile(const std::string& path, uint64_t size);

/// Deletes a file; OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// True if `path` exists (any file type).
bool FileExists(const std::string& path);

/// Entry names in `dir` (excluding "." and ".."), unsorted. NotFound
/// if the directory cannot be opened. Recovery uses this to find
/// snapshot generations when the MANIFEST itself is corrupt.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

/// Size of `path` in bytes; NotFound if it does not exist.
Result<uint64_t> FileSize(const std::string& path);

/// Append-only writer for the write-ahead journal: opens (creating if
/// needed) in append mode, writes byte runs, and fsyncs on demand.
class AppendWriter {
 public:
  static Result<AppendWriter> Open(const std::string& path);
  ~AppendWriter();

  AppendWriter(AppendWriter&& other) noexcept;
  AppendWriter& operator=(AppendWriter&& other) noexcept;
  AppendWriter(const AppendWriter&) = delete;
  AppendWriter& operator=(const AppendWriter&) = delete;

  /// Appends `bytes` at the end of the file.
  Status Append(std::string_view bytes);

  /// fsyncs everything appended so far.
  Status Sync();

  /// Bytes in the file (offset of the next append).
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

  /// Closes the descriptor early (destructor also closes).
  void Close();

 private:
  AppendWriter(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
};

/// ---------------------------------------------------------------
/// Crash test hook
///
/// SetCrashAfterBytes(n) makes the process exit abruptly (no atexit
/// handlers, no flushes — the moral equivalent of kill -9) after the
/// io layer has written `n` more bytes; the write in flight when the
/// budget runs out is torn at the byte boundary. The ddgms_shell
/// exposes it as --crash-after-bytes so CI can rehearse recovery from
/// a genuinely half-written snapshot. Pass a negative value to
/// disable (the default).
/// ---------------------------------------------------------------
void SetCrashAfterBytes(int64_t budget);
int64_t CrashAfterBytesRemaining();

}  // namespace ddgms

#endif  // DDGMS_COMMON_IO_H_
