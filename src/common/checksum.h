#ifndef DDGMS_COMMON_CHECKSUM_H_
#define DDGMS_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ddgms {

/// -------------------------------------------------------------------
/// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78)
///
/// The integrity primitive of the durability layer: every snapshot
/// section, journal record and manifest carries a CRC32C of its
/// payload so torn writes, short reads and bit flips are detected
/// before any byte is interpreted. Castagnoli rather than the zlib
/// polynomial because it is the storage-industry standard (iSCSI,
/// ext4, RocksDB/LevelDB block trailers) with better burst-error
/// detection for this block-size regime.
///
/// The implementation is a portable slice-by-8 table walk (no SSE4.2
/// dependency); tables are built once at first use.
/// -------------------------------------------------------------------

/// CRC32C of `data`, optionally extending a running crc (pass the
/// previous return value to checksum a logical stream in chunks;
/// start with 0).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Masked CRC in the LevelDB/RocksDB style: storing a CRC of data that
/// itself embeds CRCs makes accidental collisions more likely, so
/// stored checksums are rotated and offset. Verify by comparing
/// MaskCrc32c(computed) with the stored value.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace ddgms

#endif  // DDGMS_COMMON_CHECKSUM_H_
