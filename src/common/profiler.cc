#include "common/profiler.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/strings.h"
#include "common/trace.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <cstdlib>
#include <cstring>
#endif

namespace ddgms {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

#if defined(__linux__)
/// The handler's target. Set under Profiler::mu_ before the signal is
/// installed and cleared after it is restored.
std::atomic<Profiler*> g_profiler{nullptr};

/// Leading frames of every capture that belong to the profiler itself:
/// Capture(), SignalHandler(), and the kernel signal trampoline
/// (__restore_rt). Dropping them keeps flamegraphs rooted at the
/// interrupted code. Off-by-one here only leaves (or trims) one
/// trampoline frame — cosmetic, never incorrect.
constexpr int kSkipFrames = 3;
#endif

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

#if defined(__linux__)

void Profiler::SignalHandler(int /*signum*/) {
  Profiler* p = g_profiler.load(std::memory_order_acquire);
  if (p == nullptr) return;
  p->Capture();
}

// Not inlined so the fixed kSkipFrames prefix (Capture -> handler ->
// trampoline) stays stable across optimization levels.
__attribute__((noinline)) void Profiler::Capture() {
  if (!armed_.load(std::memory_order_acquire)) return;
  // Everything below is async-signal-safe: backtrace(3) after its
  // first (priming) call, clock_gettime via NowMicros, thread-local
  // reads, and relaxed atomics. No allocation, no locks.
  void* raw[96];
  const int want = std::min<int>(armed_max_depth_ + kSkipFrames, 96);
  int depth = ::backtrace(raw, want);
  int skip = std::min(depth, kSkipFrames);
  depth -= skip;
  const uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  const size_t slot = index % armed_capacity_;
  void** frames = armed_frames_ + slot * armed_max_depth_;
  for (int i = 0; i < depth; ++i) frames[i] = raw[skip + i];
  SampleMeta& meta = armed_meta_[slot];
  meta.time_us = TraceCollector::Global().NowMicros();
  meta.span_id = TraceCollector::CurrentSpanId();
  meta.depth = depth;
}

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.hz <= 0 || options.hz > 10000) {
    return Status::InvalidArgument("profiler hz must be in [1, 10000]");
  }
  if (options.capacity == 0 || options.max_depth <= 0) {
    return Status::InvalidArgument(
        "profiler capacity and max_depth must be positive");
  }
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("profiler already running");
  }
  options_ = options;
  options_.max_depth = std::min(options_.max_depth, 64);
  frame_slab_.assign(options_.capacity * options_.max_depth, nullptr);
  meta_.assign(options_.capacity, SampleMeta{0, 0, 0});
  next_.store(0, std::memory_order_relaxed);
  armed_frames_ = frame_slab_.data();
  armed_meta_ = meta_.data();
  armed_capacity_ = options_.capacity;
  armed_max_depth_ = options_.max_depth;

  // backtrace(3) lazily loads libgcc on first use (which mallocs);
  // prime it here so the handler never does.
  void* prime[4];
  (void)::backtrace(prime, 4);
  // Ensure the collector epoch exists before the handler reads it.
  (void)TraceCollector::Global().NowMicros();

  g_profiler.store(this, std::memory_order_release);
  armed_.store(true, std::memory_order_release);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &Profiler::SignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGALRM, &action, nullptr) != 0) {
    armed_.store(false, std::memory_order_release);
    g_profiler.store(nullptr, std::memory_order_release);
    return Status::Internal("profiler: sigaction(SIGALRM) failed");
  }

  itimerval timer;
  const long interval_us = 1000000L / options_.hz;
  timer.it_interval.tv_sec = interval_us / 1000000L;
  timer.it_interval.tv_usec = interval_us % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_REAL, &timer, nullptr) != 0) {
    armed_.store(false, std::memory_order_release);
    struct sigaction dfl;
    std::memset(&dfl, 0, sizeof(dfl));
    dfl.sa_handler = SIG_DFL;
    sigaction(SIGALRM, &dfl, nullptr);
    g_profiler.store(nullptr, std::memory_order_release);
    return Status::Internal("profiler: setitimer(ITIMER_REAL) failed");
  }
  running_ = true;
  return Status::OK();
}

Status Profiler::Stop() {
  MutexLock lock(mu_);
  if (!running_) {
    return Status::FailedPrecondition("profiler not running");
  }
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_REAL, &off, nullptr);
  armed_.store(false, std::memory_order_release);
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  sigaction(SIGALRM, &dfl, nullptr);
  g_profiler.store(nullptr, std::memory_order_release);
  running_ = false;
  return Status::OK();
}

#else  // !defined(__linux__)

Status Profiler::Start(const ProfilerOptions& /*options*/) {
  return Status::Unimplemented(
      "sampling profiler requires Linux (SIGALRM + execinfo)");
}

Status Profiler::Stop() {
  return Status::FailedPrecondition("profiler not running");
}

void Profiler::SignalHandler(int /*signum*/) {}
void Profiler::Capture() {}

#endif  // defined(__linux__)

bool Profiler::running() const {
  MutexLock lock(mu_);
  return running_;
}

void Profiler::Clear() {
  MutexLock lock(mu_);
  if (running_) return;
  next_.store(0, std::memory_order_relaxed);
  frame_slab_.clear();
  meta_.clear();
  armed_frames_ = nullptr;
  armed_meta_ = nullptr;
  armed_capacity_ = 0;
  armed_max_depth_ = 0;
}

namespace {

std::string SymbolizeFrame(
    void* address, std::unordered_map<void*, std::string>* cache) {
  auto it = cache->find(address);
  if (it != cache->end()) return it->second;
  std::string name;
#if defined(__linux__)
  Dl_info info;
  if (dladdr(address, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  }
#endif
  if (name.empty()) {
    name = StrFormat("0x%llx", static_cast<unsigned long long>(
                                   reinterpret_cast<uintptr_t>(address)));
  }
  (*cache)[address] = name;
  return name;
}

}  // namespace

Result<ProfileDump> Profiler::Dump() const {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(
        "profiler still running; `profile stop` before dumping");
  }
  ProfileDump dump;
  dump.hz = options_.hz;
  const uint64_t captured = next_.load(std::memory_order_relaxed);
  dump.captured = captured;
  if (meta_.empty() || captured == 0) return dump;
  const size_t capacity = meta_.size();
  const int max_depth =
      static_cast<int>(frame_slab_.size() / capacity);
  const uint64_t retained = std::min<uint64_t>(captured, capacity);
  dump.dropped = captured - retained;
  dump.samples.reserve(retained);
  std::unordered_map<void*, std::string> cache;
  for (uint64_t i = captured - retained; i < captured; ++i) {
    const size_t slot = i % capacity;
    const SampleMeta& meta = meta_[slot];
    ProfileStack stack;
    stack.span_id = meta.span_id;
    stack.time_us = meta.time_us;
    const int depth = std::min(meta.depth, max_depth);
    stack.frames.reserve(depth);
    // backtrace() records leaf-first; store root -> leaf.
    const void* const* frames = frame_slab_.data() + slot * max_depth;
    for (int f = depth - 1; f >= 0; --f) {
      stack.frames.push_back(
          SymbolizeFrame(const_cast<void*>(frames[f]), &cache));
    }
    dump.samples.push_back(std::move(stack));
  }
  return dump;
}

std::string ProfileDump::ToCollapsed() const {
  std::map<std::string, uint64_t> folded;
  for (const ProfileStack& stack : samples) {
    if (stack.frames.empty()) continue;
    std::string key = Join(stack.frames, ";");
    ++folded[key];
  }
  std::string out;
  for (const auto& [key, count] : folded) {
    out += key;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

std::string ProfileDump::ToJson() const {
  std::string out = StrFormat(
      "{\"hz\":%d,\"captured\":%llu,\"dropped\":%llu,\"samples\":[", hz,
      static_cast<unsigned long long>(captured),
      static_cast<unsigned long long>(dropped));
  for (size_t i = 0; i < samples.size(); ++i) {
    const ProfileStack& stack = samples[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"time_us\":%llu,\"span_id\":%llu,\"frames\":[",
                     static_cast<unsigned long long>(stack.time_us),
                     static_cast<unsigned long long>(stack.span_id));
    for (size_t f = 0; f < stack.frames.size(); ++f) {
      if (f > 0) out += ",";
      out += "\"" + JsonEscape(stack.frames[f]) + "\"";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ProfileDump::Summary() const {
  return StrFormat("%llu samples @%dHz (%llu retained, %llu dropped)",
                   static_cast<unsigned long long>(captured), hz,
                   static_cast<unsigned long long>(samples.size()),
                   static_cast<unsigned long long>(dropped));
}

}  // namespace ddgms
