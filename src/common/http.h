#ifndef DDGMS_COMMON_HTTP_H_
#define DDGMS_COMMON_HTTP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Embedded HTTP/1.1 server
///
/// A small POSIX-socket listener for the observability surface
/// (src/server): one accept thread feeds a bounded queue drained by a
/// fixed pool of handler threads; each connection carries exactly one
/// request/response exchange (Connection: close — scrape traffic has
/// no use for keep-alive and one-shot connections keep the worker
/// state machine trivial).
///
/// Security posture: binds 127.0.0.1 by default. The server is an
/// introspection side-door for operators, not a hardened edge — keep
/// it loopback-bound (or firewalled) in deployment.
///
/// Fault-injection points ("server.accept", "server.read",
/// "server.write") let tests rehearse connection drops at every io
/// stage; the listener must survive all of them and keep serving.
///
/// Instrumentation (inert unless the registries are enabled):
/// ddgms.server.requests / errors / rejected counters, a
/// ddgms.server.request_latency_us histogram, a
/// ddgms.server.connections_active gauge, and "server.start" /
/// "server.stop" flight-recorder events.
/// -------------------------------------------------------------------

/// One parsed request. Header names are lower-cased at parse time;
/// query values are percent-decoded.
struct HttpRequest {
  std::string method;  // as sent, upper-case by convention ("GET")
  std::string path;    // decoded path without the query string
  std::string target;  // raw request target ("/profilez?seconds=2")
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;

  /// Query parameter by name; `fallback` when absent.
  std::string QueryParam(const std::string& name,
                         const std::string& fallback = "") const;
};

/// One response. Reason phrases are derived from the status code.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200);
  static HttpResponse Html(std::string body, int status = 200);
  static HttpResponse Json(std::string body, int status = 200);
  static HttpResponse NotFound(const std::string& path);
  static HttpResponse MethodNotAllowed(const std::string& method);
  static HttpResponse BadRequest(const std::string& why);
  static HttpResponse InternalError(const std::string& why);
};

/// Canonical reason phrase for an HTTP status code ("OK", "Not Found",
/// ...; "Unknown" for unmapped codes).
const char* HttpReasonPhrase(int status);

/// Parses one serialized HTTP/1.x request (start line + headers +
/// optional Content-Length body). Exposed for tests; the server feeds
/// it from the socket read loop.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// Serializes `response` (status line, Content-Type, Content-Length,
/// Connection: close). Exposed for tests.
std::string SerializeHttpResponse(const HttpResponse& response);

struct HttpServerOptions {
  /// Loopback by default — see the security posture note above.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; HttpServer::port() reports the choice.
  int port = 0;
  /// Handler pool size.
  int num_workers = 4;
  /// Accepted connections waiting for a worker; beyond this the
  /// connection is closed immediately (counted as rejected).
  size_t max_pending = 64;
  /// Reject requests whose head + body exceed this.
  size_t max_request_bytes = 1 << 20;
  /// Per-socket read timeout, so a stalled client cannot pin a worker.
  int read_timeout_ms = 5000;
};

/// The listener. Start() binds/listens and spawns the accept thread
/// plus the worker pool; Stop() shuts the socket down, drains the
/// queue and joins every thread. All methods are thread-safe; handlers
/// run on worker threads and must be thread-safe themselves.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-path requests with `method`.
  /// Requests for a known path with an unregistered method get 405
  /// (with an Allow header implied by the registry), unknown paths get
  /// 404. Registration is only legal before Start().
  void Handle(const std::string& method, const std::string& path,
              Handler handler) EXCLUDES(mu_);

  /// Registered paths in registration order (the /statusz index and
  /// tests iterate this).
  std::vector<std::string> RoutePaths() const EXCLUDES(mu_);

  Status Start() EXCLUDES(mu_);
  Status Stop() EXCLUDES(mu_);
  bool running() const EXCLUDES(mu_);

  /// The bound port (resolves port 0); 0 before Start().
  int port() const { return port_.load(std::memory_order_relaxed); }

 private:
  struct Route {
    std::string method;
    std::string path;
    Handler handler;
  };

  void AcceptLoop();
  void WorkerLoop();
  /// One connection: read, parse, route, write. Returns the fault /
  /// parse / io status for metrics; the socket is always closed.
  Status ServeConnection(int fd);
  /// Routing against the registered table (no locking needed: routes
  /// are frozen once Start() returns).
  HttpResponse Dispatch(const HttpRequest& request) const;

  HttpServerOptions options_;
  std::atomic<int> port_{0};

  /// Written by Start() before any server thread exists and read by
  /// them afterwards; Stop() shuts the socket down before joining and
  /// closes it after — thread lifecycle, not mu_, orders access.
  int listen_fd_ = -1;
  /// Immutable copy of routes_ frozen by Start() (same ordering), so
  /// Dispatch() on worker threads needs no lock.
  std::vector<Route> frozen_routes_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  std::vector<Route> routes_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::deque<int> pending_ GUARDED_BY(mu_);
  CondVar pending_cv_;
};

/// Minimal loopback HTTP client for tests, benches and smoke checks:
/// one GET round trip, returning the raw response (status line +
/// headers + body). `timeout_ms` bounds connect and read.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& target,
                            int timeout_ms = 5000);

/// Splits a raw response from HttpGet into (status code, body).
/// ParseError when the status line is malformed.
Result<std::pair<int, std::string>> ParseHttpResponse(
    const std::string& raw);

}  // namespace ddgms

#endif  // DDGMS_COMMON_HTTP_H_
