#include "common/window.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"

namespace ddgms {

std::atomic<bool> WindowRegistry::enabled_{false};

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic delta between two cumulative readings. A reading smaller
/// than the baseline means the instrument was reset (ResetValues);
/// treat the new reading as entirely fresh history.
uint64_t DeltaU64(uint64_t now, uint64_t before) {
  return now >= before ? now - before : now;
}

double DeltaF64(double now, double before) {
  return now >= before ? now - before : now;
}

}  // namespace

double FractionAbove(const HistogramSnapshot& snapshot, double threshold) {
  if (snapshot.count == 0) return 0.0;
  double above = 0.0;
  for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
    const uint64_t in_bucket = snapshot.buckets[i];
    if (in_bucket == 0) continue;
    const double lower = i == 0 ? 0.0 : snapshot.bounds[i - 1];
    const double upper = i < snapshot.bounds.size()
                             ? snapshot.bounds[i]
                             : std::max(snapshot.max, lower);
    if (threshold < lower) {
      above += static_cast<double>(in_bucket);
    } else if (threshold < upper) {
      above += static_cast<double>(in_bucket) * (upper - threshold) /
               (upper - lower);
    }
  }
  return above / static_cast<double>(snapshot.count);
}

std::string WindowStats::ToString() const {
  std::string out = StrFormat(
      "%-44s %5llds  n=%-8llu rate=%s/s", instrument.c_str(),
      static_cast<long long>(window_seconds),
      static_cast<unsigned long long>(count),
      FormatDouble(rate_per_sec, 4).c_str());
  if (!merged.bounds.empty()) {
    out += StrFormat("  p50=%s p90=%s p99=%s", FormatDouble(p50, 4).c_str(),
                     FormatDouble(p90, 4).c_str(),
                     FormatDouble(p99, 4).c_str());
  }
  return out;
}

WindowRegistry& WindowRegistry::Global() {
  static WindowRegistry* registry = new WindowRegistry();
  return *registry;
}

const std::vector<int64_t>& WindowRegistry::DefaultWindowSeconds() {
  static const std::vector<int64_t>* windows =
      new std::vector<int64_t>{60, 300, 3600};
  return *windows;
}

Status WindowRegistry::TrackCounter(
    const std::string& name, const std::vector<int64_t>& window_seconds) {
  return Track(name, /*is_histogram=*/false, window_seconds);
}

Status WindowRegistry::TrackHistogram(
    const std::string& name, const std::vector<int64_t>& window_seconds) {
  return Track(name, /*is_histogram=*/true, window_seconds);
}

Status WindowRegistry::Track(const std::string& name, bool is_histogram,
                             const std::vector<int64_t>& window_seconds) {
  if (name.empty()) {
    return Status::InvalidArgument("window: instrument name is empty");
  }
  const std::vector<int64_t>& windows =
      window_seconds.empty() ? DefaultWindowSeconds() : window_seconds;
  for (int64_t w : windows) {
    if (w <= 0) {
      return Status::InvalidArgument(
          StrFormat("window: non-positive window %llds for '%s'",
                    static_cast<long long>(w), name.c_str()));
    }
  }

  MutexLock lock(mu_);
  auto& slot = tracked_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Tracked>();
    slot->name = name;
    slot->is_histogram = is_histogram;
    // Baseline at the current cumulative state so history that
    // predates tracking is not attributed to the first bucket.
    if (is_histogram) {
      HistogramSnapshot snap =
          MetricsRegistry::Global().GetHistogram(name).Snapshot(name);
      slot->last_count = snap.count;
      slot->last_sum = snap.sum;
      slot->last_buckets = snap.buckets;
      slot->bounds = snap.bounds;
    } else {
      slot->last_count = MetricsRegistry::Global().GetCounter(name).value();
    }
  } else if (slot->is_histogram != is_histogram) {
    return Status::InvalidArgument(
        StrFormat("window: '%s' already tracked as a %s", name.c_str(),
                  slot->is_histogram ? "histogram" : "counter"));
  }
  for (int64_t w : windows) {
    bool have = false;
    for (const Ring& ring : slot->rings) {
      if (ring.window_seconds == w) {
        have = true;
        break;
      }
    }
    if (have) continue;
    Ring ring;
    ring.window_seconds = w;
    ring.bucket_us =
        std::max<int64_t>(w * 1000000 / kBucketsPerWindow, 1000000);
    const size_t slots = static_cast<size_t>(
        std::max<int64_t>(1, (w * 1000000 + ring.bucket_us - 1) /
                                 ring.bucket_us));
    ring.counts.assign(slots, 0);
    ring.sums.assign(slots, 0.0);
    if (is_histogram) {
      ring.hist_buckets.assign(
          slots, std::vector<uint64_t>(slot->last_buckets.size(), 0));
    }
    slot->rings.push_back(std::move(ring));
  }
  std::sort(slot->rings.begin(), slot->rings.end(),
            [](const Ring& a, const Ring& b) {
              return a.window_seconds < b.window_seconds;
            });
  return Status::OK();
}

void WindowRegistry::Tick() { TickAt(SteadyNowMicros()); }

void WindowRegistry::TickAt(int64_t now_us) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  if (now_us < last_tick_us_) now_us = last_tick_us_;  // clock went back
  if (first_tick_us_ < 0) first_tick_us_ = now_us;
  last_tick_us_ = now_us;

  for (auto& [name, tracked] : tracked_) {
    uint64_t delta_count = 0;
    double delta_sum = 0.0;
    std::vector<uint64_t> delta_buckets;
    if (tracked->is_histogram) {
      HistogramSnapshot snap =
          MetricsRegistry::Global().GetHistogram(name).Snapshot(name);
      delta_count = DeltaU64(snap.count, tracked->last_count);
      delta_sum = DeltaF64(snap.sum, tracked->last_sum);
      delta_buckets.resize(snap.buckets.size(), 0);
      const bool reset = snap.count < tracked->last_count;
      for (size_t i = 0; i < snap.buckets.size(); ++i) {
        const uint64_t before = (reset || i >= tracked->last_buckets.size())
                                    ? 0
                                    : tracked->last_buckets[i];
        delta_buckets[i] = DeltaU64(snap.buckets[i], before);
      }
      tracked->last_count = snap.count;
      tracked->last_sum = snap.sum;
      tracked->last_buckets = snap.buckets;
      if (tracked->bounds.empty()) tracked->bounds = snap.bounds;
    } else {
      const uint64_t value =
          MetricsRegistry::Global().GetCounter(name).value();
      delta_count = DeltaU64(value, tracked->last_count);
      delta_sum = static_cast<double>(delta_count);
      tracked->last_count = value;
    }

    for (Ring& ring : tracked->rings) {
      const int64_t now_bucket = now_us / ring.bucket_us;
      const int64_t slots = static_cast<int64_t>(ring.counts.size());
      if (ring.current_bucket < 0 ||
          now_bucket - ring.current_bucket >= slots) {
        for (int64_t s = 0; s < slots; ++s) {
          ring.counts[s] = 0;
          ring.sums[s] = 0.0;
          if (!ring.hist_buckets.empty()) {
            std::fill(ring.hist_buckets[s].begin(),
                      ring.hist_buckets[s].end(), 0);
          }
        }
      } else {
        for (int64_t b = ring.current_bucket + 1; b <= now_bucket; ++b) {
          const size_t s = static_cast<size_t>(b % slots);
          ring.counts[s] = 0;
          ring.sums[s] = 0.0;
          if (!ring.hist_buckets.empty()) {
            std::fill(ring.hist_buckets[s].begin(),
                      ring.hist_buckets[s].end(), 0);
          }
        }
      }
      ring.current_bucket = now_bucket;
      const size_t slot = static_cast<size_t>(now_bucket % slots);
      ring.counts[slot] += delta_count;
      ring.sums[slot] += delta_sum;
      if (!ring.hist_buckets.empty()) {
        std::vector<uint64_t>& hb = ring.hist_buckets[slot];
        if (hb.size() < delta_buckets.size()) {
          hb.resize(delta_buckets.size(), 0);
        }
        for (size_t i = 0; i < delta_buckets.size(); ++i) {
          hb[i] += delta_buckets[i];
        }
      }
    }
  }
}

WindowStats WindowRegistry::StatsLocked(const Tracked& tracked,
                                        const Ring& ring) const {
  WindowStats stats;
  stats.instrument = tracked.name;
  stats.window_seconds = ring.window_seconds;
  if (first_tick_us_ >= 0) {
    stats.covered_seconds =
        std::min(static_cast<double>(ring.window_seconds),
                 static_cast<double>(last_tick_us_ - first_tick_us_) / 1e6);
  }
  for (uint64_t c : ring.counts) stats.count += c;
  for (double s : ring.sums) stats.sum += s;
  if (stats.covered_seconds > 0) {
    stats.rate_per_sec =
        static_cast<double>(stats.count) / stats.covered_seconds;
  }
  if (tracked.is_histogram) {
    HistogramSnapshot& merged = stats.merged;
    merged.name = tracked.name;
    merged.bounds = tracked.bounds;
    merged.buckets.assign(tracked.bounds.size() + 1, 0);
    for (const std::vector<uint64_t>& hb : ring.hist_buckets) {
      for (size_t i = 0; i < hb.size() && i < merged.buckets.size(); ++i) {
        merged.buckets[i] += hb[i];
      }
    }
    merged.count = stats.count;
    merged.sum = stats.sum;
    // The ring keeps bucket deltas, not exact extrema; synthesize
    // min/max from the occupied bucket edges so Percentile() can
    // interpolate sensibly.
    for (size_t i = 0; i < merged.buckets.size(); ++i) {
      if (merged.buckets[i] == 0) continue;
      merged.min = i == 0 ? 0.0 : merged.bounds[i - 1];
      break;
    }
    for (size_t i = merged.buckets.size(); i > 0; --i) {
      if (merged.buckets[i - 1] == 0) continue;
      merged.max = i - 1 < merged.bounds.size() ? merged.bounds[i - 1]
                                                : merged.bounds.back();
      break;
    }
    stats.p50 = merged.Percentile(0.5);
    stats.p90 = merged.Percentile(0.9);
    stats.p99 = merged.Percentile(0.99);
  }
  return stats;
}

Result<WindowStats> WindowRegistry::Stats(const std::string& name,
                                          int64_t window_seconds) const {
  MutexLock lock(mu_);
  auto it = tracked_.find(name);
  if (it == tracked_.end()) {
    return Status::NotFound("window: instrument '" + name +
                            "' is not tracked");
  }
  for (const Ring& ring : it->second->rings) {
    if (ring.window_seconds == window_seconds) {
      return StatsLocked(*it->second, ring);
    }
  }
  return Status::NotFound(
      StrFormat("window: '%s' has no %llds window", name.c_str(),
                static_cast<long long>(window_seconds)));
}

std::vector<WindowStats> WindowRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<WindowStats> out;
  for (const auto& [name, tracked] : tracked_) {
    for (const Ring& ring : tracked->rings) {
      out.push_back(StatsLocked(*tracked, ring));
    }
  }
  return out;  // map iteration: sorted by name, rings sorted by length
}

std::string WindowRegistry::ToJson() const {
  std::vector<WindowStats> all = Snapshot();
  std::string out = "{\"enabled\":";
  out += Enabled() ? "true" : "false";
  out += ",\"instruments\":{";
  std::string current;
  bool first_instrument = true;
  for (size_t i = 0; i < all.size(); ++i) {
    const WindowStats& w = all[i];
    if (w.instrument != current) {
      if (!current.empty()) out += "},";
      if (!first_instrument && current.empty()) out += ",";
      first_instrument = false;
      current = w.instrument;
      out += "\"" + current + "\":{";
    } else {
      out += ",";
    }
    out += StrFormat("\"%llds\":{\"count\":%llu,\"rate_per_sec\":%s,"
                     "\"covered_seconds\":%s",
                     static_cast<long long>(w.window_seconds),
                     static_cast<unsigned long long>(w.count),
                     FormatDouble(w.rate_per_sec, 6).c_str(),
                     FormatDouble(w.covered_seconds, 3).c_str());
    if (!w.merged.bounds.empty()) {
      out += StrFormat(",\"p50\":%s,\"p90\":%s,\"p99\":%s",
                       FormatDouble(w.p50, 4).c_str(),
                       FormatDouble(w.p90, 4).c_str(),
                       FormatDouble(w.p99, 4).c_str());
    }
    out += "}";
  }
  if (!current.empty()) out += "}";
  out += "}}";
  return out;
}

size_t WindowRegistry::tracked_count() const {
  MutexLock lock(mu_);
  return tracked_.size();
}

void WindowRegistry::ResetForTesting() {
  MutexLock lock(mu_);
  tracked_.clear();
  last_tick_us_ = -1;
  first_tick_us_ = -1;
}

}  // namespace ddgms
