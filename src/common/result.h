#ifndef DDGMS_COMMON_RESULT_H_
#define DDGMS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ddgms {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Analogous to arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
///
/// [[nodiscard]] like Status: a discarded Result is a compile error
/// under -Werror; call status().IgnoreError() to drop one on purpose.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so functions can
  /// `return Status::...;`). Constructing from an OK status is a bug and
  /// is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() if a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must not be called unless ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its Status on failure,
/// otherwise assigning the value to `lhs`. Enclosing function must return
/// Status or Result<U>.
#define DDGMS_ASSIGN_OR_RETURN(lhs, rexpr)              \
  DDGMS_ASSIGN_OR_RETURN_IMPL(                          \
      DDGMS_RESULT_CONCAT(_result_, __LINE__), lhs, rexpr)

#define DDGMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define DDGMS_RESULT_CONCAT_INNER(a, b) a##b
#define DDGMS_RESULT_CONCAT(a, b) DDGMS_RESULT_CONCAT_INNER(a, b)

}  // namespace ddgms

#endif  // DDGMS_COMMON_RESULT_H_
