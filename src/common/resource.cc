#include "common/resource.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/strings.h"

namespace ddgms {

std::atomic<bool> ResourceMeter::enabled_{false};

namespace {

/// Innermost ScopedAccounting pool on this thread.
thread_local ResourcePool* tls_current_pool = nullptr;

std::string FormatBytes(int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes < 0) return StrFormat("%lld B", static_cast<long long>(bytes));
  if (b < 1024.0) return StrFormat("%lld B", static_cast<long long>(bytes));
  if (b < 1024.0 * 1024.0) return StrFormat("%.1f KiB", b / 1024.0);
  if (b < 1024.0 * 1024.0 * 1024.0) {
    return StrFormat("%.1f MiB", b / (1024.0 * 1024.0));
  }
  return StrFormat("%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace

void ResourcePool::Charge(uint64_t bytes) {
  for (ResourcePool* p = this; p != nullptr; p = p->parent_) {
    p->allocated_.fetch_add(bytes, std::memory_order_relaxed);
    p->charges_.fetch_add(1, std::memory_order_relaxed);
    const int64_t now =
        p->current_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    int64_t peak = p->peak_.load(std::memory_order_relaxed);
    while (now > peak && !p->peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
}

void ResourcePool::Release(uint64_t bytes) {
  for (ResourcePool* p = this; p != nullptr; p = p->parent_) {
    p->freed_.fetch_add(bytes, std::memory_order_relaxed);
    p->releases_.fetch_add(1, std::memory_order_relaxed);
    p->current_.fetch_sub(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
  }
}

void ResourcePool::ResetValues() {
  allocated_.store(0, std::memory_order_relaxed);
  freed_.store(0, std::memory_order_relaxed);
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  charges_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
}

ResourceMeter& ResourceMeter::Global() {
  static ResourceMeter* meter = new ResourceMeter();
  return *meter;
}

ResourcePool& ResourceMeter::GetPool(const std::string& name) {
  MutexLock lock(mu_);
  auto it = pools_.find(name);
  if (it != pools_.end()) return *it->second;
  // Create the dotted-prefix ancestor chain root-first so each pool's
  // parent pointer is final before the pool becomes visible.
  ResourcePool* parent = &root_;
  size_t start = 0;
  while (true) {
    size_t dot = name.find('.', start);
    std::string prefix =
        dot == std::string::npos ? name : name.substr(0, dot);
    auto found = pools_.find(prefix);
    if (found == pools_.end()) {
      found = pools_
                  .emplace(prefix, std::unique_ptr<ResourcePool>(
                                       new ResourcePool(prefix, parent)))
                  .first;
    }
    parent = found->second.get();
    if (dot == std::string::npos) return *found->second;
    start = dot + 1;
  }
}

ResourceSnapshot ResourceMeter::Snapshot() const {
  ResourceSnapshot snapshot;
  auto copy = [](const ResourcePool& pool) {
    ResourcePoolStats stats;
    stats.name = pool.name();
    stats.allocated = pool.allocated();
    stats.freed = pool.freed();
    stats.current = pool.current();
    stats.peak = pool.peak();
    stats.charges = pool.charges();
    stats.releases = pool.releases();
    return stats;
  };
  MutexLock lock(mu_);
  snapshot.pools.reserve(pools_.size() + 1);
  snapshot.pools.push_back(copy(root_));
  for (const auto& [name, pool] : pools_) {
    snapshot.pools.push_back(copy(*pool));
  }
  return snapshot;
}

void ResourceMeter::PublishToMetrics() const {
  if (!MetricsRegistry::Enabled()) return;
  const ResourceSnapshot snapshot = Snapshot();
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const ResourcePoolStats& pool : snapshot.pools) {
    registry.GetGauge("ddgms.resource.bytes_current:" + pool.name)
        .Set(static_cast<double>(pool.current));
    registry.GetGauge("ddgms.resource.bytes_peak:" + pool.name)
        .Set(static_cast<double>(pool.peak));
  }
}

void ResourceMeter::ResetValues() {
  MutexLock lock(mu_);
  root_.ResetValues();
  for (auto& [name, pool] : pools_) pool->ResetValues();
}

void ResourceMeter::ChargeCurrent(uint64_t bytes) {
  ResourcePool* pool = tls_current_pool;
  if (pool == nullptr) {
    static ResourcePool* other = &Global().GetPool("other");
    pool = other;
  }
  pool->Charge(bytes);
}

void ResourceMeter::ReleaseCurrent(uint64_t bytes) {
  ResourcePool* pool = tls_current_pool;
  if (pool == nullptr) {
    static ResourcePool* other = &Global().GetPool("other");
    pool = other;
  }
  pool->Release(bytes);
}

const ResourcePoolStats* ResourceSnapshot::pool(
    const std::string& name) const {
  for (const ResourcePoolStats& p : pools) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string ResourceSnapshot::ToString() const {
  std::string out = "resource pools:\n";
  out += StrFormat("  %-24s %12s %12s %12s %10s\n", "pool", "current",
                   "peak", "allocated", "charges");
  for (const ResourcePoolStats& p : pools) {
    if (p.allocated == 0 && p.freed == 0) continue;
    out += StrFormat("  %-24s %12s %12s %12s %10llu\n", p.name.c_str(),
                     FormatBytes(p.current).c_str(),
                     FormatBytes(p.peak).c_str(),
                     FormatBytes(static_cast<int64_t>(p.allocated)).c_str(),
                     static_cast<unsigned long long>(p.charges));
  }
  return out;
}

std::string ResourceSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const ResourcePoolStats& p : pools) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"allocated\":%llu,\"freed\":%llu,\"current\":%lld,"
        "\"peak\":%lld,\"charges\":%llu,\"releases\":%llu}",
        p.name.c_str(), static_cast<unsigned long long>(p.allocated),
        static_cast<unsigned long long>(p.freed),
        static_cast<long long>(p.current),
        static_cast<long long>(p.peak),
        static_cast<unsigned long long>(p.charges),
        static_cast<unsigned long long>(p.releases));
  }
  out += "}";
  return out;
}

ScopedAccounting::ScopedAccounting(const char* pool_name) {
  if (!ResourceMeter::Enabled()) return;
  pool_ = &ResourceMeter::Global().GetPool(pool_name);
  saved_ = tls_current_pool;
  tls_current_pool = pool_;
  allocated_at_entry_ = pool_->allocated();
  freed_at_entry_ = pool_->freed();
}

ScopedAccounting::~ScopedAccounting() {
  if (pool_ == nullptr) return;
  tls_current_pool = saved_;
}

uint64_t ScopedAccounting::BytesCharged() const {
  if (pool_ == nullptr) return 0;
  return pool_->allocated() - allocated_at_entry_;
}

uint64_t ScopedAccounting::BytesReleased() const {
  if (pool_ == nullptr) return 0;
  return pool_->freed() - freed_at_entry_;
}

ResourcePool* ScopedAccounting::Current() { return tls_current_pool; }

}  // namespace ddgms
