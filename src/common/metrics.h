#ifndef DDGMS_COMMON_METRICS_H_
#define DDGMS_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Metrics
///
/// A process-wide registry of named instruments — monotonic counters,
/// settable gauges and fixed-bucket latency histograms — that every
/// layer of the platform reports into. Like common/faults, the whole
/// subsystem is compiled in but inert by default: every mutation is
/// guarded by one relaxed atomic-bool load, so the disabled path costs
/// a single predictable branch. Call MetricsRegistry::Enable() (the
/// shell does this at startup) to start recording.
///
/// Instruments are created on first use and live for the process
/// lifetime, so references returned by the Get*() methods are stable
/// and may be cached by hot paths. ResetValues() zeroes values without
/// invalidating those references.
///
/// Naming convention: dot-separated "ddgms.<layer>.<what>[:<detail>]"
/// (e.g. "ddgms.etl.rows_in", "ddgms.retry.attempts:store.fetch").
/// Exporters sanitize names for their target format.
/// -------------------------------------------------------------------

/// Monotonically increasing event count. Thread-safe; increments are
/// dropped while the registry is disabled.
class Counter {
 public:
  void Increment(uint64_t delta = 1);
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (fill levels, cardinalities, configuration).
/// Thread-safe; writes are dropped while the registry is disabled.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  double value() const;
  void Reset();

 private:
  std::atomic<uint64_t> bits_{0};  // bit-cast double
};

/// Point-in-time view of one histogram (see Histogram).
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  /// Upper bounds of each finite bucket; one extra overflow bucket
  /// (+Inf) follows, so buckets.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Estimated p-quantile (0 < p < 1) by linear interpolation inside
  /// the containing bucket; 0 when empty.
  double Percentile(double p) const;
};

/// Fixed-bucket histogram for latency-style observations. Bucket
/// bounds are set at creation (DefaultLatencyBounds() unless
/// overridden) and never change, so recording is lock-free: one atomic
/// add per observation plus min/max CAS. Observations are dropped
/// while the registry is disabled.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  HistogramSnapshot Snapshot(const std::string& name) const;

  void Reset();

  /// Exponential microsecond bounds: 1us .. 10s.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;  // sorted, strictly increasing
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// Point-in-time view of the whole registry, sorted by name. This is
/// what `DdDgms::MetricsSnapshot()` and the shell's `stats` command
/// return; exporters format it for humans, dashboards and scrapers.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter by exact name (0 when absent).
  uint64_t counter(const std::string& name) const;
  /// Histogram by exact name (nullptr when absent).
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Human-readable multi-line listing.
  std::string ToString() const;
  /// Machine-readable JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
  /// Prometheus text exposition format (names sanitized to
  /// [a-zA-Z0-9_:], histogram as cumulative _bucket/_sum/_count).
  std::string ToPrometheusText() const;
};

/// The global named registry. All methods are thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Master switch (one relaxed atomic, shared by all instruments).
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates an instrument. Returned references are stable
  /// for the process lifetime.
  Counter& GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mu_);
  /// Default latency bounds; a custom-bounds overload for
  /// non-latency distributions. Bounds are fixed on first creation —
  /// later calls with different bounds return the existing histogram.
  Histogram& GetHistogram(const std::string& name) EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds) EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Zeroes every instrument's value. Registrations (and outstanding
  /// references) stay valid.
  void ResetValues() EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  static std::atomic<bool> enabled_;
};

/// RAII latency recorder: observes the elapsed wall time in
/// microseconds into `histogram_name` on destruction. When the
/// registry is disabled at construction the timer is fully inert (no
/// clock read, no lookup).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(const char* histogram_name);
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  /// Elapsed microseconds so far (0 when inert). Mostly for tests.
  double ElapsedMicros() const;

 private:
  const char* name_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// Call-site helpers matching the DDGMS_FAULT_POINT idiom: one relaxed
/// load on the disabled path, registry lookup only when enabled.
#define DDGMS_METRIC_ADD(name, delta)                                \
  do {                                                               \
    if (::ddgms::MetricsRegistry::Enabled()) {                       \
      ::ddgms::MetricsRegistry::Global().GetCounter(name).Increment( \
          delta);                                                    \
    }                                                                \
  } while (false)

#define DDGMS_METRIC_INC(name) DDGMS_METRIC_ADD(name, 1)

#define DDGMS_METRIC_GAUGE_SET(name, value)                         \
  do {                                                              \
    if (::ddgms::MetricsRegistry::Enabled()) {                      \
      ::ddgms::MetricsRegistry::Global().GetGauge(name).Set(value); \
    }                                                               \
  } while (false)

#define DDGMS_METRIC_OBSERVE(name, value)                    \
  do {                                                       \
    if (::ddgms::MetricsRegistry::Enabled()) {               \
      ::ddgms::MetricsRegistry::Global().GetHistogram(name)  \
          .Observe(value);                                   \
    }                                                        \
  } while (false)

}  // namespace ddgms

#endif  // DDGMS_COMMON_METRICS_H_
