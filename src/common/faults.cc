#include "common/faults.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "common/metrics.h"

namespace ddgms {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultPlan plan) {
  {
    MutexLock lock(mu_);
    PointState& state = points_[point];
    state.plan = std::move(plan);
    state.armed = true;
    state.injected = 0;
    state.rng.Reseed(state.plan.seed);
  }
  Enable();
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultRegistry::Reset() {
  Disable();
  MutexLock lock(mu_);
  points_.clear();
}

Status FaultRegistry::OnHit(const std::string& point) {
  DDGMS_METRIC_INC("ddgms.faults.hits");
  MutexLock lock(mu_);
  PointState& state = points_[point];
  const size_t hit = state.hits++;  // 0-based index of this hit
  if (!state.armed) return Status::OK();

  const FaultPlan& plan = state.plan;
  bool fire = false;
  if (plan.fail_first > 0 && hit < plan.fail_first) fire = true;
  if (plan.every_n > 0 && (hit + 1) % plan.every_n == 0) fire = true;
  if (plan.probability > 0.0 && state.rng.Bernoulli(plan.probability)) {
    fire = true;
  }
  if (!fire) return Status::OK();

  ++state.injected;
  if (MetricsRegistry::Enabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("ddgms.faults.injected").Increment();
    registry.GetCounter("ddgms.faults.injected:" + point).Increment();
  }
  std::string message = plan.message.empty()
                            ? "injected fault at '" + point + "'"
                            : plan.message;
  DDGMS_LOG_WARN("faults.injected")
      .With("point", point)
      .With("hit", hit + 1)
      .Message(message);
  return Status(plan.code, std::move(message));
}

size_t FaultRegistry::hits(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

size_t FaultRegistry::injected(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

std::vector<std::string> FaultRegistry::SeenPoints() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    names.push_back(name);
  }
  return names;
}

ScopedFault::ScopedFault(std::string point, FaultPlan plan)
    : point_(std::move(point)) {
  FaultRegistry::Global().Arm(point_, std::move(plan));
}

ScopedFault::~ScopedFault() { FaultRegistry::Global().Disarm(point_); }

bool RetryPolicy::IsRetryable(const Status& status) const {
  if (status.ok()) return false;
  return std::find(retryable_codes.begin(), retryable_codes.end(),
                   status.code()) != retryable_codes.end();
}

double RetryPolicy::DelayMsForRetry(int retry) const {
  double delay = base_delay_ms;
  for (int i = 1; i < retry; ++i) {
    delay *= backoff_factor;
    if (delay >= max_delay_ms) break;
  }
  return std::min(delay, max_delay_ms);
}

double RetryPolicy::JitteredDelayMsForRetry(int retry, Rng& rng) const {
  double delay = DelayMsForRetry(retry);
  if (jitter_fraction <= 0.0) return delay;
  delay = rng.Uniform(delay * (1.0 - jitter_fraction),
                      delay * (1.0 + jitter_fraction));
  return std::min(std::max(delay, 0.0), max_delay_ms);
}

namespace internal {

void RetrySleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void RecordRetryMetrics(std::string_view label, int attempts,
                        int transient_retries, double backoff_ms,
                        bool succeeded) {
  if (!succeeded) {
    DDGMS_LOG_ERROR("retry.exhausted")
        .With("label", std::string(label))
        .With("attempts", attempts);
  } else if (transient_retries > 0) {
    DDGMS_LOG_WARN("retry.recovered")
        .With("label", std::string(label))
        .With("attempts", attempts)
        .With("backoff_ms", backoff_ms);
  }
  if (!MetricsRegistry::Enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("ddgms.retry.runs").Increment();
  registry.GetCounter("ddgms.retry.attempts")
      .Increment(static_cast<uint64_t>(attempts));
  if (transient_retries > 0) {
    registry.GetCounter("ddgms.retry.transient_retries")
        .Increment(static_cast<uint64_t>(transient_retries));
    registry.GetGauge("ddgms.retry.backoff_ms_total").Add(backoff_ms);
  }
  if (!succeeded) {
    registry.GetCounter("ddgms.retry.exhausted").Increment();
  }
  if (!label.empty()) {
    const std::string suffix(label);
    registry.GetCounter("ddgms.retry.attempts:" + suffix)
        .Increment(static_cast<uint64_t>(attempts));
    if (transient_retries > 0) {
      registry.GetCounter("ddgms.retry.transient_retries:" + suffix)
          .Increment(static_cast<uint64_t>(transient_retries));
    }
  }
}

}  // namespace internal

}  // namespace ddgms
