#include "common/slo.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/window.h"

namespace ddgms {

std::atomic<bool> SloEngine::enabled_{false};

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LogLevel LevelFor(SloState state) {
  switch (state) {
    case SloState::kFiring:
      return LogLevel::kError;
    case SloState::kWarning:
      return LogLevel::kWarn;
    case SloState::kOk:
    case SloState::kResolved:
      return LogLevel::kInfo;
  }
  return LogLevel::kInfo;
}

const char* TransitionEvent(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "slo.ok";
    case SloState::kWarning:
      return "slo.warning";
    case SloState::kFiring:
      return "slo.firing";
    case SloState::kResolved:
      return "slo.resolved";
  }
  return "slo.ok";
}

}  // namespace

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kLatency:
      return "latency";
    case SloKind::kErrorRate:
      return "error_rate";
    case SloKind::kStallBudget:
      return "stall_budget";
  }
  return "latency";
}

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarning:
      return "warning";
    case SloState::kFiring:
      return "firing";
    case SloState::kResolved:
      return "resolved";
  }
  return "ok";
}

std::string SloStatus::ToString() const {
  return StrFormat("%-24s %-12s %-8s burn_fast=%s burn_slow=%s n=%llu",
                   name.c_str(), SloKindName(kind), SloStateName(state),
                   FormatDouble(fast_burn_rate, 3).c_str(),
                   FormatDouble(slow_burn_rate, 3).c_str(),
                   static_cast<unsigned long long>(fast_window_count));
}

std::string SloStatus::ToJson() const {
  return StrFormat(
      "{\"name\":\"%s\",\"kind\":\"%s\",\"state\":\"%s\","
      "\"description\":\"%s\",\"burn_fast\":%s,\"burn_slow\":%s,"
      "\"fast_window_count\":%llu,\"transitions\":%llu,"
      "\"last_transition_us\":%lld}",
      name.c_str(), SloKindName(kind), SloStateName(state),
      description.c_str(), FormatDouble(fast_burn_rate, 4).c_str(),
      FormatDouble(slow_burn_rate, 4).c_str(),
      static_cast<unsigned long long>(fast_window_count),
      static_cast<unsigned long long>(transitions),
      static_cast<long long>(last_transition_us));
}

SloEngine& SloEngine::Global() {
  static SloEngine* engine = new SloEngine();
  return *engine;
}

Status SloEngine::Register(const SloDef& def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("slo: name is empty");
  }
  if (def.fast_window_seconds <= 0 || def.slow_window_seconds <= 0 ||
      def.fast_window_seconds > def.slow_window_seconds) {
    return Status::InvalidArgument(
        "slo '" + def.name +
        "': windows must be positive with fast <= slow");
  }
  if (def.firing_burn_rate < def.warning_burn_rate ||
      def.warning_burn_rate <= 0) {
    return Status::InvalidArgument(
        "slo '" + def.name +
        "': need 0 < warning_burn_rate <= firing_burn_rate");
  }
  const std::vector<int64_t> windows = {def.fast_window_seconds,
                                        def.slow_window_seconds};
  switch (def.kind) {
    case SloKind::kLatency:
      if (def.latency_histogram.empty() || def.latency_target_us <= 0 ||
          def.objective <= 0 || def.objective >= 1) {
        return Status::InvalidArgument(
            "slo '" + def.name +
            "': latency SLO needs a histogram, a positive target and "
            "0 < objective < 1");
      }
      DDGMS_RETURN_IF_ERROR(WindowRegistry::Global().TrackHistogram(
          def.latency_histogram, windows));
      break;
    case SloKind::kErrorRate:
      if (def.error_counter.empty() || def.total_counter.empty() ||
          def.objective <= 0 || def.objective >= 1) {
        return Status::InvalidArgument(
            "slo '" + def.name +
            "': error-rate SLO needs error/total counters and "
            "0 < objective < 1");
      }
      DDGMS_RETURN_IF_ERROR(
          WindowRegistry::Global().TrackCounter(def.error_counter, windows));
      DDGMS_RETURN_IF_ERROR(
          WindowRegistry::Global().TrackCounter(def.total_counter, windows));
      break;
    case SloKind::kStallBudget:
      if (def.stall_counter.empty() || def.allowed_per_hour <= 0) {
        return Status::InvalidArgument(
            "slo '" + def.name +
            "': stall-budget SLO needs a counter and a positive "
            "hourly budget");
      }
      DDGMS_RETURN_IF_ERROR(
          WindowRegistry::Global().TrackCounter(def.stall_counter, windows));
      break;
  }

  MutexLock lock(mu_);
  for (const Slo& slo : slos_) {
    if (slo.def.name == def.name) {
      return Status::InvalidArgument("slo '" + def.name +
                                     "' is already registered");
    }
  }
  Slo slo;
  slo.def = def;
  slos_.push_back(std::move(slo));
  return Status::OK();
}

Status SloEngine::RegisterDefaultSlos() {
  {
    MutexLock lock(mu_);
    if (defaults_registered_) return Status::OK();
    defaults_registered_ = true;
  }

  SloDef latency;
  latency.name = "mdx_latency";
  latency.kind = SloKind::kLatency;
  latency.description = "99% of MDX executions complete within 250ms";
  latency.latency_histogram = "ddgms.mdx.execute_latency_us";
  latency.latency_target_us = 250000;
  latency.objective = 0.99;
  DDGMS_RETURN_IF_ERROR(Register(latency));

  SloDef availability;
  availability.name = "server_availability";
  availability.kind = SloKind::kErrorRate;
  availability.description =
      "99% of observability HTTP requests succeed (non-5xx)";
  availability.error_counter = "ddgms.server.responses_error";
  availability.total_counter = "ddgms.server.requests";
  availability.objective = 0.99;
  DDGMS_RETURN_IF_ERROR(Register(availability));

  SloDef stalls;
  stalls.name = "query_stalls";
  stalls.kind = SloKind::kStallBudget;
  stalls.description = "at most 6 watchdog-flagged query stalls per hour";
  stalls.stall_counter = "ddgms.queries.stalled_total";
  stalls.allowed_per_hour = 6.0;
  DDGMS_RETURN_IF_ERROR(Register(stalls));
  return Status::OK();
}

void SloEngine::BurnOver(const SloDef& def, int64_t window_seconds,
                         double* burn, uint64_t* count) {
  *burn = 0.0;
  *count = 0;
  switch (def.kind) {
    case SloKind::kLatency: {
      Result<WindowStats> stats = WindowRegistry::Global().Stats(
          def.latency_histogram, window_seconds);
      if (!stats.ok()) return;
      *count = stats->count;
      if (stats->count == 0) return;
      const double bad = FractionAbove(stats->merged, def.latency_target_us);
      *burn = bad / (1.0 - def.objective);
      return;
    }
    case SloKind::kErrorRate: {
      Result<WindowStats> errors =
          WindowRegistry::Global().Stats(def.error_counter, window_seconds);
      Result<WindowStats> total =
          WindowRegistry::Global().Stats(def.total_counter, window_seconds);
      if (!errors.ok() || !total.ok()) return;
      *count = total->count;
      if (total->count == 0) return;
      // A skewed read (the two counters are sampled separately) can
      // briefly show errors > total; clamp to a full outage.
      const double bad = std::min(
          1.0, static_cast<double>(errors->count) /
                   static_cast<double>(total->count));
      *burn = bad / (1.0 - def.objective);
      return;
    }
    case SloKind::kStallBudget: {
      Result<WindowStats> stalls =
          WindowRegistry::Global().Stats(def.stall_counter, window_seconds);
      if (!stalls.ok()) return;
      *count = stalls->count;
      if (stalls->count == 0 || stalls->covered_seconds <= 0) return;
      const double per_hour = static_cast<double>(stalls->count) /
                              stalls->covered_seconds * 3600.0;
      *burn = per_hour / def.allowed_per_hour;
      return;
    }
  }
}

void SloEngine::Evaluate() { EvaluateAt(SteadyNowMicros()); }

void SloEngine::EvaluateAt(int64_t now_us) {
  if (!Enabled()) return;
  WindowRegistry::Global().TickAt(now_us);

  struct Transition {
    std::string name;
    SloKind kind = SloKind::kLatency;
    SloState from = SloState::kOk;
    SloState to = SloState::kOk;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
  };
  std::vector<Transition> transitions;

  {
    MutexLock lock(mu_);
    for (Slo& slo : slos_) {
      BurnOver(slo.def, slo.def.fast_window_seconds, &slo.fast_burn,
               &slo.fast_count);
      uint64_t slow_count = 0;
      BurnOver(slo.def, slo.def.slow_window_seconds, &slo.slow_burn,
               &slow_count);

      const bool firing = slo.fast_burn >= slo.def.firing_burn_rate &&
                          slo.slow_burn >= slo.def.firing_burn_rate;
      const bool warning = slo.fast_burn >= slo.def.warning_burn_rate &&
                           slo.slow_burn >= slo.def.warning_burn_rate;
      const bool healthy = slo.fast_burn < slo.def.warning_burn_rate &&
                           slo.slow_burn < slo.def.warning_burn_rate;

      SloState next = slo.state;
      switch (slo.state) {
        case SloState::kOk:
          if (firing) {
            next = SloState::kFiring;
          } else if (warning) {
            next = SloState::kWarning;
          }
          break;
        case SloState::kWarning:
          if (firing) {
            next = SloState::kFiring;
          } else if (healthy) {
            next = SloState::kOk;
          }
          break;
        case SloState::kFiring:
          if (healthy) {
            next = SloState::kResolved;
          }
          break;
        case SloState::kResolved:
          if (firing) {
            next = SloState::kFiring;
          } else if (warning) {
            next = SloState::kWarning;
          } else {
            next = SloState::kOk;
          }
          break;
      }
      if (next != slo.state) {
        transitions.push_back({slo.def.name, slo.def.kind, slo.state, next,
                               slo.fast_burn, slo.slow_burn});
        slo.state = next;
        slo.transitions++;
        slo.last_transition_us = now_us;
      }

      DDGMS_METRIC_GAUGE_SET("ddgms.slo.state:" + slo.def.name,
                             static_cast<double>(slo.state));
      DDGMS_METRIC_GAUGE_SET("ddgms.slo.burn_fast:" + slo.def.name,
                             slo.fast_burn);
      DDGMS_METRIC_GAUGE_SET("ddgms.slo.burn_slow:" + slo.def.name,
                             slo.slow_burn);
    }
  }

  for (const Transition& t : transitions) {
    DDGMS_METRIC_INC("ddgms.slo.transitions");
    if (t.to == SloState::kFiring) DDGMS_METRIC_INC("ddgms.slo.firing_total");
    DDGMS_LOG(LevelFor(t.to), TransitionEvent(t.to))
        .With("slo", t.name)
        .With("kind", SloKindName(t.kind))
        .With("from", SloStateName(t.from))
        .With("to", SloStateName(t.to))
        .With("burn_fast", t.fast_burn)
        .With("burn_slow", t.slow_burn);
  }
}

std::vector<SloStatus> SloEngine::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const Slo& slo : slos_) {
    SloStatus status;
    status.name = slo.def.name;
    status.kind = slo.def.kind;
    status.description = slo.def.description;
    status.state = slo.state;
    status.fast_burn_rate = slo.fast_burn;
    status.slow_burn_rate = slo.slow_burn;
    status.fast_window_count = slo.fast_count;
    status.transitions = slo.transitions;
    status.last_transition_us = slo.last_transition_us;
    out.push_back(std::move(status));
  }
  return out;
}

std::string SloEngine::ToJson() const {
  std::string out = "{\"enabled\":";
  out += Enabled() ? "true" : "false";
  out += ",\"evaluator_running\":";
  out += evaluator_running() ? "true" : "false";
  out += ",\"slos\":[";
  const std::vector<SloStatus> statuses = Snapshot();
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (i > 0) out += ",";
    out += statuses[i].ToJson();
  }
  out += "]}";
  return out;
}

size_t SloEngine::slo_count() const {
  MutexLock lock(mu_);
  return slos_.size();
}

Status SloEngine::StartEvaluator(SloEvaluatorOptions options) {
  if (options.period_ms <= 0) {
    return Status::InvalidArgument("slo: evaluator period must be positive");
  }
  MutexLock lock(mu_);
  if (evaluator_running_) {
    return Status::FailedPrecondition("slo: evaluator already running");
  }
  evaluator_running_ = true;
  evaluator_stop_.store(false, std::memory_order_relaxed);
  evaluator_ = std::thread(&SloEngine::EvaluatorLoop, this, options);
  return Status::OK();
}

Status SloEngine::StopEvaluator() {
  {
    MutexLock lock(mu_);
    if (!evaluator_running_) {
      return Status::FailedPrecondition("slo: evaluator not running");
    }
  }
  evaluator_stop_.store(true, std::memory_order_relaxed);
  evaluator_cv_.NotifyAll();
  evaluator_.join();
  MutexLock lock(mu_);
  evaluator_running_ = false;
  return Status::OK();
}

bool SloEngine::evaluator_running() const {
  MutexLock lock(mu_);
  return evaluator_running_;
}

void SloEngine::EvaluatorLoop(SloEvaluatorOptions options) {
  for (;;) {
    Evaluate();
    {
      MutexLock lock(mu_);
      evaluator_cv_.WaitFor(
          mu_, std::chrono::milliseconds(options.period_ms), [this] {
            return evaluator_stop_.load(std::memory_order_relaxed);
          });
    }
    if (evaluator_stop_.load(std::memory_order_relaxed)) return;
  }
}

void SloEngine::ResetForTesting() {
  if (evaluator_running()) StopEvaluator().IgnoreError();
  MutexLock lock(mu_);
  slos_.clear();
  defaults_registered_ = false;
}

}  // namespace ddgms
