#ifndef DDGMS_COMMON_DATE_H_
#define DDGMS_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ddgms {

/// Calendar date stored as days since the civil epoch 1970-01-01.
/// Visit timestamps in the clinical data are day-granular; a compact
/// integer encoding keeps columns sortable and arithmetic trivial.
class Date {
 public:
  Date() : days_(0) {}
  explicit Date(int32_t days_since_epoch) : days_(days_since_epoch) {}

  /// Builds a date from a civil year/month/day. Validates ranges
  /// (month 1-12, day valid for that month, with leap years).
  static Result<Date> FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD".
  static Result<Date> FromString(const std::string& text);

  int32_t days_since_epoch() const { return days_; }

  int year() const;
  int month() const;
  int day() const;

  /// Date shifted by a number of days.
  Date AddDays(int32_t days) const { return Date(days_ + days); }
  /// Whole days from `other` to this date (positive if this is later).
  int32_t DaysSince(const Date& other) const { return days_ - other.days_; }
  /// Fractional years from `other` to this date (365.25-day years).
  double YearsSince(const Date& other) const {
    return static_cast<double>(days_ - other.days_) / 365.25;
  }

  /// "YYYY-MM-DD".
  std::string ToString() const;

  friend bool operator==(const Date& a, const Date& b) {
    return a.days_ == b.days_;
  }
  friend bool operator!=(const Date& a, const Date& b) { return !(a == b); }
  friend bool operator<(const Date& a, const Date& b) {
    return a.days_ < b.days_;
  }
  friend bool operator<=(const Date& a, const Date& b) {
    return a.days_ <= b.days_;
  }
  friend bool operator>(const Date& a, const Date& b) { return b < a; }
  friend bool operator>=(const Date& a, const Date& b) { return b <= a; }

 private:
  int32_t days_;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_DATE_H_
