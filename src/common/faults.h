#ifndef DDGMS_COMMON_FAULTS_H_
#define DDGMS_COMMON_FAULTS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Fault injection
///
/// Named injection points are compiled into hot load/transform paths
/// via DDGMS_FAULT_POINT("name"). They are inert by default: the macro
/// guards on one relaxed atomic-bool load, so disabled builds pay a
/// single predictable branch and nothing else. Tests (and chaos
/// harnesses) arm points with deterministic trigger schedules to
/// rehearse transient-failure handling without touching real I/O.
/// -------------------------------------------------------------------

/// When an armed injection point fails. Schedules compose: a hit fails
/// if ANY enabled trigger fires. All triggers are deterministic —
/// `probability` draws from an Rng seeded with `seed`, so a given plan
/// always fails the same hit indices.
struct FaultPlan {
  StatusCode code = StatusCode::kInternal;
  /// Message carried by the injected Status; defaults to
  /// "injected fault at '<point>'".
  std::string message;
  /// Fail the first N hits (transient-outage shape; N=0 disables).
  size_t fail_first = 0;
  /// Fail every Nth hit, 1-based (periodic-fault shape; 0 disables).
  size_t every_n = 0;
  /// Fail each hit with this probability, drawn deterministically from
  /// `seed` (flaky-network shape; 0.0 disables).
  double probability = 0.0;
  uint64_t seed = 42;
};

/// Process-wide registry of injection points. All methods are
/// thread-safe. The registry also counts hits per point whenever it is
/// enabled (even for unarmed points), which lets tests discover every
/// injection point a given flow passes through.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Master switch. Enable() alone (no armed plans) observes hit
  /// counts without injecting anything; Disable() restores the
  /// zero-cost inert state. Arm() enables automatically.
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Arms `point` with `plan` (replacing any previous plan) and
  /// enables the registry.
  void Arm(const std::string& point, FaultPlan plan) EXCLUDES(mu_);

  /// Disarms one point (its hit counters are kept).
  void Disarm(const std::string& point) EXCLUDES(mu_);

  /// Disarms everything, clears counters, and disables the registry.
  void Reset() EXCLUDES(mu_);

  /// Called by DDGMS_FAULT_POINT when the registry is enabled. Counts
  /// the hit and returns the injected Status if the point is armed and
  /// its schedule fires; OK otherwise.
  Status OnHit(const std::string& point) EXCLUDES(mu_);

  /// Times `point` was passed while the registry was enabled.
  size_t hits(const std::string& point) const EXCLUDES(mu_);

  /// Times a fault was actually injected at `point`.
  size_t injected(const std::string& point) const EXCLUDES(mu_);

  /// Every point name seen (hit or armed) since the last Reset().
  std::vector<std::string> SeenPoints() const EXCLUDES(mu_);

 private:
  FaultRegistry() = default;

  struct PointState {
    FaultPlan plan;
    bool armed = false;
    size_t hits = 0;
    size_t injected = 0;
    Rng rng{42};
  };

  mutable Mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, PointState> points_ GUARDED_BY(mu_);
};

/// RAII arm/disarm for tests: arms `point` on construction, disarms it
/// on destruction (the registry stays enabled if other points remain
/// armed; Reset() is the heavy hammer).
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultPlan plan);
  ~ScopedFault();

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

/// Declares a fault-injection point. Usable in any function returning
/// Status or Result<T> (Result converts from Status implicitly).
/// Zero-cost when the registry is disabled: one relaxed atomic load.
#define DDGMS_FAULT_POINT(point)                                   \
  do {                                                             \
    if (::ddgms::FaultRegistry::Global().enabled()) {              \
      ::ddgms::Status _ddgms_fault =                               \
          ::ddgms::FaultRegistry::Global().OnHit(point);           \
      if (!_ddgms_fault.ok()) return _ddgms_fault;                 \
    }                                                              \
  } while (false)

/// -------------------------------------------------------------------
/// Retry
/// -------------------------------------------------------------------

/// Bounded-retry policy with capped exponential backoff. Only the
/// codes in `retryable_codes` are retried — by default the transient
/// shapes (kDataLoss, kInternal); permanent errors (parse errors,
/// missing files) surface immediately.
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 3;
  /// Delay before the first retry, in milliseconds.
  double base_delay_ms = 1.0;
  /// Upper bound on any single delay.
  double max_delay_ms = 1000.0;
  /// Multiplier applied per retry (attempt k waits
  /// base * factor^(k-1), capped).
  double backoff_factor = 2.0;
  /// Cap on the total time one Retry() call may spend across all
  /// attempts and backoffs, in milliseconds. 0 (default) = unlimited.
  /// When the deadline has passed — or the next backoff would overrun
  /// it — Retry() stops retrying and returns the last transient error
  /// instead of sleeping into a blown budget.
  double total_deadline_ms = 0.0;
  /// Symmetric jitter applied to every backoff: each delay is drawn
  /// uniformly from [delay*(1-j), delay*(1+j)], clamped to
  /// [0, max_delay_ms]. 0 (default) = deterministic delays. Jitter
  /// decorrelates retry storms when many loaders hit the same flaky
  /// connector; draws are deterministic per `jitter_seed`.
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 42;
  std::vector<StatusCode> retryable_codes = {StatusCode::kDataLoss,
                                             StatusCode::kInternal};

  bool IsRetryable(const Status& status) const;

  /// Delay before retry number `retry` (1-based), capped. Pure — no
  /// jitter, so schedules stay predictable for tests and docs.
  double DelayMsForRetry(int retry) const;

  /// DelayMsForRetry with this policy's jitter applied via `rng`.
  double JitteredDelayMsForRetry(int retry, Rng& rng) const;
};

/// Accounting for one Retry() run (how many attempts, what transient
/// errors were absorbed).
struct RetryStats {
  int attempts = 0;
  std::vector<Status> transient_failures;
};

namespace internal {
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}
/// Sleeps for `ms` milliseconds (no-op for ms <= 0).
void RetrySleepMs(double ms);
/// Publishes one finished Retry() run to the metrics registry
/// (ddgms.retry.* counters, per-label when `label` is non-empty).
/// No-op while metrics are disabled.
void RecordRetryMetrics(std::string_view label, int attempts,
                        int transient_retries, double backoff_ms,
                        bool succeeded);
}  // namespace internal

/// Invokes `fn` (returning Status or Result<T>) up to
/// `policy.max_attempts` times, sleeping with capped exponential
/// backoff between attempts, until it succeeds or fails with a
/// non-retryable code. Returns the last attempt's result.
///
/// Every run reports to the metrics registry (attempt counts, absorbed
/// transients, total backoff); pass a `label` such as "store.fetch" to
/// additionally break those counters out per call site in `stats`
/// output.
template <typename Fn>
auto Retry(const RetryPolicy& policy, Fn&& fn,
           RetryStats* stats = nullptr, std::string_view label = {})
    -> std::invoke_result_t<Fn&> {
  const int max_attempts = policy.max_attempts < 1 ? 1
                                                   : policy.max_attempts;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  Rng jitter_rng(policy.jitter_seed);
  int attempt = 0;
  double backoff_ms = 0.0;
  for (;;) {
    ++attempt;
    auto result = fn();
    if (stats != nullptr) stats->attempts = attempt;
    const Status& status = internal::StatusOf(result);
    if (status.ok() || attempt >= max_attempts ||
        !policy.IsRetryable(status)) {
      internal::RecordRetryMetrics(label, attempt, attempt - 1,
                                   backoff_ms, status.ok());
      return result;
    }
    const double delay_ms =
        policy.JitteredDelayMsForRetry(attempt, jitter_rng);
    // A deadline both stops late retries and refuses to start a sleep
    // that would overrun it — the caller gets the transient error
    // while there is still budget to act on it.
    if (policy.total_deadline_ms > 0.0 &&
        elapsed_ms() + delay_ms > policy.total_deadline_ms) {
      internal::RecordRetryMetrics(label, attempt, attempt - 1,
                                   backoff_ms, status.ok());
      return result;
    }
    if (stats != nullptr) stats->transient_failures.push_back(status);
    backoff_ms += delay_ms;
    internal::RetrySleepMs(delay_ms);
  }
}

}  // namespace ddgms

#endif  // DDGMS_COMMON_FAULTS_H_
