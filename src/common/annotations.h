#ifndef DDGMS_COMMON_ANNOTATIONS_H_
#define DDGMS_COMMON_ANNOTATIONS_H_

/// Source-level annotations consumed by ddgms_analyzer (and, where a
/// compiler equivalent exists, by the optimizer too).
///
/// DDGMS_HOT marks a function as per-row/per-cell hot: it runs once
/// per element of a scan, aggregation, or parse loop, so a single
/// heap allocation inside it multiplies by the row count. The
/// analyzer's hot-path hygiene pass flags, inside DDGMS_HOT bodies:
///
///   * operator new / std::make_unique / std::make_shared,
///   * std::string construction (temporaries and locals),
///   * push_back / emplace_back on a container with no reserve() in
///     the same body,
///   * Value temporaries (boxing a cell per element).
///
/// Deliberate exceptions carry `// NOLINT(ddgms-hot-path-alloc)` on
/// the flagged line with a justification. On GNU-compatible compilers
/// the macro also expands to __attribute__((hot)) so the annotation
/// feeds block placement; elsewhere it is a pure marker.
#if defined(__GNUC__) || defined(__clang__)
#define DDGMS_HOT __attribute__((hot))
#else
#define DDGMS_HOT
#endif

#endif  // DDGMS_COMMON_ANNOTATIONS_H_
