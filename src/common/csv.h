#ifndef DDGMS_COMMON_CSV_H_
#define DDGMS_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ddgms {

/// RFC-4180 style CSV support: fields containing the delimiter, quotes or
/// newlines are quoted with `"` and embedded quotes doubled.

/// Parses one CSV record (no embedded newlines) into fields.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim = ',');

/// Parses a full CSV document (handles quoted embedded newlines).
/// Returns rows of fields; ragged rows are permitted here and validated by
/// higher layers.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char delim = ',');

/// Serializes fields into one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim = ',');

/// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace ddgms

#endif  // DDGMS_COMMON_CSV_H_
