#ifndef DDGMS_COMMON_CSV_H_
#define DDGMS_COMMON_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/result.h"

namespace ddgms {

/// RFC-4180 style CSV support: fields containing the delimiter, quotes or
/// newlines are quoted with `"` and embedded quotes doubled. Line endings
/// LF, CRLF and lone CR all terminate a record; an unterminated quoted
/// field at EOF is a parse error; a trailing delimiter yields a final
/// empty field.

/// Parses one CSV record (no embedded newlines) into fields.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim = ',');

/// Parses a full CSV document (handles quoted embedded newlines).
/// Returns rows of fields; ragged rows are permitted here and validated by
/// higher layers. Strict: the first structural error fails the parse.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char delim = ',');

/// ParseCsv plus per-field quoting detail, for readers that need to
/// tell a quoted empty field ("" in the source) apart from a bare one
/// — the two parse to identical strings but mean different things to
/// loaders that encode empty string vs null that way.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
  /// Parallel to `rows`: 1 when that field was quoted AND empty.
  std::vector<std::vector<uint8_t>> quoted_empty;
};
Result<CsvDocument> ParseCsvDocument(const std::string& text,
                                     char delim = ',');

/// One parsed record plus its position, for lenient parsing where bad
/// records are skipped and surviving records must stay attributable to
/// their place in the source document.
struct CsvRecord {
  /// 1-based physical record number in the document (blank records
  /// count, so for files without embedded newlines this is the line
  /// number).
  size_t record_number = 0;
  std::vector<std::string> fields;
  /// Parallel to `fields` when populated: 1 for a quoted empty field
  /// (see CsvDocument). May be empty when the producer did not track
  /// quoting.
  std::vector<uint8_t> quoted_empty;
};

/// Lenient CSV parse: structurally bad records (e.g. an unterminated
/// quoted field at EOF) are quarantined under stage "csv-parse" —
/// record number, Status, and truncated raw content — instead of
/// failing the document. Pass a null `quarantine` to skip itemisation
/// (bad records are still dropped). Only returns an error status for
/// non-CSV failures.
Result<std::vector<CsvRecord>> ParseCsvLenient(
    const std::string& text, char delim = ',',
    QuarantineReport* quarantine = nullptr);

/// Serializes one field, quoting when it contains the delimiter,
/// quotes or newlines (embedded quotes doubled). `force_quote` quotes
/// unconditionally — how writers encode an empty string so it stays
/// distinct from a null's bare empty field.
std::string FormatCsvField(const std::string& field, char delim = ',',
                           bool force_quote = false);

/// Serializes fields into one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim = ',');

/// Reads an entire file into a string. Errors carry the path and the
/// OS error (strerror) so retry/quarantine logs are actionable.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file. Errors
/// carry the path and the OS error (strerror).
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace ddgms

#endif  // DDGMS_COMMON_CSV_H_
