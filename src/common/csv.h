#ifndef DDGMS_COMMON_CSV_H_
#define DDGMS_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/result.h"

namespace ddgms {

/// RFC-4180 style CSV support: fields containing the delimiter, quotes or
/// newlines are quoted with `"` and embedded quotes doubled. Line endings
/// LF, CRLF and lone CR all terminate a record; an unterminated quoted
/// field at EOF is a parse error; a trailing delimiter yields a final
/// empty field.

/// Parses one CSV record (no embedded newlines) into fields.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim = ',');

/// Parses a full CSV document (handles quoted embedded newlines).
/// Returns rows of fields; ragged rows are permitted here and validated by
/// higher layers. Strict: the first structural error fails the parse.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char delim = ',');

/// One parsed record plus its position, for lenient parsing where bad
/// records are skipped and surviving records must stay attributable to
/// their place in the source document.
struct CsvRecord {
  /// 1-based physical record number in the document (blank records
  /// count, so for files without embedded newlines this is the line
  /// number).
  size_t record_number = 0;
  std::vector<std::string> fields;
};

/// Lenient CSV parse: structurally bad records (e.g. an unterminated
/// quoted field at EOF) are quarantined under stage "csv-parse" —
/// record number, Status, and truncated raw content — instead of
/// failing the document. Pass a null `quarantine` to skip itemisation
/// (bad records are still dropped). Only returns an error status for
/// non-CSV failures.
Result<std::vector<CsvRecord>> ParseCsvLenient(
    const std::string& text, char delim = ',',
    QuarantineReport* quarantine = nullptr);

/// Serializes fields into one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim = ',');

/// Reads an entire file into a string. Errors carry the path and the
/// OS error (strerror) so retry/quarantine logs are actionable.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file. Errors
/// carry the path and the OS error (strerror).
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace ddgms

#endif  // DDGMS_COMMON_CSV_H_
