#include "common/log.h"

#include <cmath>

#include "common/strings.h"
#include "common/trace.h"

namespace ddgms {

std::atomic<bool> EventLog::enabled_{false};

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

Result<LogLevel> LogLevelFromName(std::string_view name) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    if (EqualsIgnoreCase(name, LogLevelName(level))) return level;
  }
  return Status::ParseError("unknown log level '" + std::string(name) +
                            "' (debug|info|warn|error)");
}

std::string LogValue::ToString() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  if (const auto* i = std::get_if<int64_t>(&data_)) {
    return StrFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* d = std::get_if<double>(&data_)) {
    return FormatDouble(*d);
  }
  return std::get<bool>(data_) ? "true" : "false";
}

std::string LogValue::ToJson() const {
  if (const auto* s = std::get_if<std::string>(&data_)) {
    std::string out = "\"";
    out += JsonEscape(*s);
    out += "\"";
    return out;
  }
  if (const auto* d = std::get_if<double>(&data_)) {
    if (!std::isfinite(*d)) return "null";
    return FormatDouble(*d, 9);
  }
  return ToString();  // int64 / bool render identically
}

std::string LogRecord::ToString() const {
  std::string out = StrFormat(
      "#%-5llu %+10.3fms [%-5s] %-28s",
      static_cast<unsigned long long>(seq),
      static_cast<double>(time_us) / 1000.0, LogLevelName(level),
      event.c_str());
  if (span_id != 0) {
    out += StrFormat(" span=%llu", static_cast<unsigned long long>(span_id));
    if (parent_span_id != 0) {
      out += StrFormat("/%llu",
                       static_cast<unsigned long long>(parent_span_id));
    }
  }
  if (!message.empty()) {
    out += " ";
    out += message;
  }
  if (!fields.empty()) {
    out += "  {";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += fields[i].first + "=" + fields[i].second.ToString();
    }
    out += "}";
  }
  return out;
}

std::string LogRecord::ToJson() const {
  std::string out = StrFormat(
      "{\"seq\":%llu,\"time_us\":%llu,\"level\":\"%s\",\"event\":\"%s\","
      "\"span\":%llu,\"parent_span\":%llu",
      static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(time_us), LogLevelName(level),
      JsonEscape(event).c_str(), static_cast<unsigned long long>(span_id),
      static_cast<unsigned long long>(parent_span_id));
  if (!message.empty()) {
    out += ",\"message\":\"";
    out += JsonEscape(message);
    out += "\"";
  }
  out += ",\"fields\":{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(fields[i].first);
    out += "\":";
    out += fields[i].second.ToJson();
  }
  out += "}}";
  return out;
}

void StderrLogSink::Write(const LogRecord& record) {
  std::string line = record.ToString();
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

Result<std::unique_ptr<JsonlFileLogSink>> JsonlFileLogSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::NotFound("cannot open log file '" + path +
                            "' for appending");
  }
  return std::unique_ptr<JsonlFileLogSink>(new JsonlFileLogSink(file));
}

JsonlFileLogSink::~JsonlFileLogSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileLogSink::Write(const LogRecord& record) {
  std::string line = record.ToJson();
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::set_capacity(size_t capacity) {
  MutexLock lock(mu_);
  if (capacity == 0) capacity = 1;
  if (capacity < ring_.size()) {
    std::vector<LogRecord> kept;
    kept.reserve(capacity);
    size_t n = ring_.size();
    for (size_t i = n - capacity; i < n; ++i) {
      kept.push_back(std::move(ring_[(head_ + i) % n]));
    }
    dropped_ += n - capacity;
    ring_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = capacity;
}

size_t EventLog::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

void EventLog::Record(LogRecord record) {
  MutexLock lock(mu_);
  record.seq = next_seq_++;
  for (std::unique_ptr<LogSink>& sink : sinks_) {
    sink->Write(record);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<LogRecord> EventLog::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<LogRecord> out;
  out.reserve(ring_.size());
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(head_ + i) % n]);
  }
  return out;
}

std::vector<LogRecord> EventLog::Drain() {
  MutexLock lock(mu_);
  std::vector<LogRecord> out;
  out.reserve(ring_.size());
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(ring_[(head_ + i) % n]));
  }
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  return out;
}

size_t EventLog::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

size_t EventLog::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void EventLog::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

void EventLog::AddSink(std::unique_ptr<LogSink> sink) {
  MutexLock lock(mu_);
  sinks_.push_back(std::move(sink));
}

void EventLog::ClearSinks() {
  MutexLock lock(mu_);
  sinks_.clear();
}

std::string EventLog::ToString(size_t tail) const {
  std::vector<LogRecord> records = Snapshot();
  size_t evicted = dropped();
  size_t start = 0;
  if (tail > 0 && tail < records.size()) start = records.size() - tail;
  std::string out = StrFormat(
      "log: %zu records%s%s\n", records.size(),
      evicted > 0 ? StrFormat(" (%zu evicted)", evicted).c_str() : "",
      start > 0 ? StrFormat(", showing newest %zu", tail).c_str() : "");
  for (size_t i = start; i < records.size(); ++i) {
    out += records[i].ToString();
    out += "\n";
  }
  return out;
}

std::string EventLog::ToJsonl(size_t tail) const {
  std::vector<LogRecord> records = Snapshot();
  size_t start = 0;
  if (tail > 0 && tail < records.size()) start = records.size() - tail;
  std::string out;
  for (size_t i = start; i < records.size(); ++i) {
    out += records[i].ToJson();
    out += "\n";
  }
  return out;
}

LogEvent::LogEvent(LogLevel level, const char* event) {
  if (!EventLog::ShouldLog(level)) return;
  active_ = true;
  record_.level = level;
  record_.event = event;
  record_.span_id = TraceCollector::CurrentSpanId();
  record_.parent_span_id = TraceCollector::CurrentParentSpanId();
  record_.time_us = TraceCollector::Global().NowMicros();
}

LogEvent::~LogEvent() {
  if (!active_) return;
  EventLog::Global().Record(std::move(record_));
}

}  // namespace ddgms
