#include "common/status.h"

namespace ddgms {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

bool StatusCodeFromName(const std::string& name, StatusCode* code) {
  for (StatusCode candidate : kAllStatusCodes) {
    if (name == StatusCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ddgms
