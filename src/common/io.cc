#include "common/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/faults.h"
#include "common/strings.h"

namespace ddgms {

namespace {

/// Remaining byte budget before the simulated crash; negative =
/// disabled. Decremented by every io-layer write.
std::atomic<int64_t> g_crash_after_bytes{-1};

/// Applies the crash budget to a pending write of `size` bytes.
/// Returns how many bytes may be written; if the budget runs out
/// inside this write, writes the permitted prefix via `fd` first and
/// then exits the process abruptly.
size_t ChargeCrashBudget(int fd, const char* data, size_t size) {
  int64_t budget = g_crash_after_bytes.load(std::memory_order_relaxed);
  if (budget < 0) return size;
  if (static_cast<uint64_t>(budget) >= size) {
    g_crash_after_bytes.fetch_sub(static_cast<int64_t>(size),
                                  std::memory_order_relaxed);
    return size;
  }
  // Tear the write at the budget boundary, then die like kill -9:
  // _Exit skips atexit handlers, stream flushes and destructors.
  size_t allowed = static_cast<size_t>(budget);
  size_t done = 0;
  while (done < allowed) {
    ssize_t n = ::write(fd, data + done, allowed - done);
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  std::_Exit(137);
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  const char* data = bytes.data();
  size_t size = ChargeCrashBudget(fd, data, bytes.size());
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss(StrFormat("write to '%s' failed: %s",
                                        path.c_str(), std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::DataLoss(StrFormat("fsync of '%s' failed: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

/// Parent directory of `path` ("." when there is no separator).
std::string DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutLengthPrefixed(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

Result<uint8_t> ByteReader::ReadU8() {
  DDGMS_ASSIGN_OR_RETURN(std::string_view b, ReadBytes(1));
  return static_cast<uint8_t>(b[0]);
}

Result<uint32_t> ByteReader::ReadU32() {
  DDGMS_ASSIGN_OR_RETURN(std::string_view b, ReadBytes(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  DDGMS_ASSIGN_OR_RETURN(std::string_view b, ReadBytes(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  DDGMS_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<int32_t> ByteReader::ReadI32() {
  DDGMS_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<double> ByteReader::ReadF64() {
  DDGMS_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string_view> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return Status::DataLoss(
        StrFormat("short read: need %zu bytes at offset %zu, have %zu", n,
                  offset_, remaining()));
  }
  std::string_view out = data_.substr(offset_, n);
  offset_ += n;
  return out;
}

Result<std::string_view> ByteReader::ReadLengthPrefixed() {
  DDGMS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  return ReadBytes(len);
}

Status ByteReader::Skip(size_t n) {
  return ReadBytes(n).status();
}

Result<std::string> ReadFileBinary(const std::string& path) {
  DDGMS_FAULT_POINT("io.read_file");
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(StrFormat("cannot open '%s' for reading: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::DataLoss(StrFormat("error reading '%s': %s",
                                             path.c_str(),
                                             std::strerror(errno)));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileDurable(const std::string& path, std::string_view contents,
                        bool sync) {
  DDGMS_FAULT_POINT("io.durable.open");
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot open '%s' for writing: %s",
                                      tmp.c_str(), std::strerror(errno)));
  }
  auto fail = [&](Status st) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  };
  {
    Status st;
    if (FaultRegistry::Global().enabled()) {
      st = FaultRegistry::Global().OnHit("io.durable.write");
    }
    if (st.ok()) st = WriteAll(fd, contents, tmp);
    if (!st.ok()) return fail(std::move(st));
  }
  if (sync) {
    Status st;
    if (FaultRegistry::Global().enabled()) {
      st = FaultRegistry::Global().OnHit("io.durable.sync");
    }
    if (st.ok()) st = FsyncFd(fd, tmp);
    if (!st.ok()) return fail(std::move(st));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::DataLoss(StrFormat("close of '%s' failed: %s",
                                      tmp.c_str(), std::strerror(errno)));
  }
  DDGMS_FAULT_POINT("io.durable.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::DataLoss(StrFormat("rename '%s' -> '%s' failed: %s",
                                           tmp.c_str(), path.c_str(),
                                           std::strerror(errno)));
    ::unlink(tmp.c_str());
    return st;
  }
  if (sync) {
    DDGMS_FAULT_POINT("io.durable.dirsync");
    DDGMS_RETURN_IF_ERROR(SyncDir(DirOf(path)));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::DataLoss(StrFormat("cannot open directory '%s': %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  Status st = FsyncFd(fd, dir);
  ::close(fd);
  return st;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  DDGMS_FAULT_POINT("io.truncate");
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::DataLoss(StrFormat("truncate of '%s' to %llu failed: %s",
                                      path.c_str(),
                                      static_cast<unsigned long long>(size),
                                      std::strerror(errno)));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(StrFormat("cannot remove '%s': %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::NotFound(StrFormat("cannot open directory '%s': %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  std::vector<std::string> entries;
  while (struct dirent* entry = ::readdir(handle)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    entries.push_back(std::move(name));
  }
  ::closedir(handle);
  return entries;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound(StrFormat("cannot stat '%s': %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<AppendWriter> AppendWriter::Open(const std::string& path) {
  DDGMS_FAULT_POINT("io.append.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot open '%s' for append: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    Status st = Status::Internal(StrFormat("cannot seek '%s': %s",
                                           path.c_str(),
                                           std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return AppendWriter(path, fd, static_cast<uint64_t>(end));
}

AppendWriter::~AppendWriter() { Close(); }

AppendWriter::AppendWriter(AppendWriter&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
}

AppendWriter& AppendWriter::operator=(AppendWriter&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
  }
  return *this;
}

Status AppendWriter::Append(std::string_view bytes) {
  DDGMS_FAULT_POINT("io.append.write");
  if (fd_ < 0) {
    return Status::FailedPrecondition("append writer is closed");
  }
  DDGMS_RETURN_IF_ERROR(WriteAll(fd_, bytes, path_));
  size_ += bytes.size();
  return Status::OK();
}

Status AppendWriter::Sync() {
  DDGMS_FAULT_POINT("io.append.sync");
  if (fd_ < 0) {
    return Status::FailedPrecondition("append writer is closed");
  }
  return FsyncFd(fd_, path_);
}

void AppendWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SetCrashAfterBytes(int64_t budget) {
  g_crash_after_bytes.store(budget, std::memory_order_relaxed);
}

int64_t CrashAfterBytesRemaining() {
  return g_crash_after_bytes.load(std::memory_order_relaxed);
}

}  // namespace ddgms
