#ifndef DDGMS_COMMON_SYNC_H_
#define DDGMS_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace ddgms {

/// -------------------------------------------------------------------
/// Annotated synchronization primitives
///
/// Thin wrappers over std::mutex / std::condition_variable_any that
/// carry clang thread-safety-analysis attributes, so the invariant
/// "field X is only touched while mutex M is held" is written in the
/// type system and violations are COMPILE ERRORS on clang
/// (-Wthread-safety -Werror, enabled by the build) instead of latent
/// races. On GCC the attributes expand to nothing and the wrappers are
/// zero-cost forwarding shims, so both toolchains build identical code.
///
/// Usage pattern (the only sanctioned locking idiom in this repo;
/// ddgms_lint rejects naked std::mutex / std::lock_guard outside this
/// header):
///
///   class Registry {
///    private:
///     mutable Mutex mu_;
///     std::map<std::string, int> items_ GUARDED_BY(mu_);
///   };
///
///   int Registry::Lookup(const std::string& k) const {
///     MutexLock lock(mu_);
///     ...  // items_ accessible; without the lock: compile error
///   }
///
/// Annotate private helpers called under the lock with REQUIRES(mu_),
/// and public entry points that must NOT hold it (because they lock it
/// themselves) with EXCLUDES(mu_).
/// -------------------------------------------------------------------

}  // namespace ddgms

// Attribute plumbing (mirrors abseil's thread_annotations.h / the
// RocksDB port header): real attributes on clang, no-ops elsewhere.
#if defined(__clang__)
#define DDGMS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DDGMS_THREAD_ANNOTATION_(x)
#endif

/// Declares that a field may only be accessed while holding `x`.
#define GUARDED_BY(x) DDGMS_THREAD_ANNOTATION_(guarded_by(x))
/// As GUARDED_BY, for the pointee of a pointer field.
#define PT_GUARDED_BY(x) DDGMS_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function requires the capability to already be held by the caller.
#define REQUIRES(...) \
  DDGMS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function requires the capability NOT to be held (it acquires it
/// itself); catches self-deadlock at compile time.
#define EXCLUDES(...) DDGMS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function acquires / releases the capability.
#define ACQUIRE(...) \
  DDGMS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  DDGMS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability when returning `ret`.
#define TRY_ACQUIRE(ret, ...) \
  DDGMS_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))
/// Type is a lockable capability / RAII scoped capability.
#define CAPABILITY(x) DDGMS_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY DDGMS_THREAD_ANNOTATION_(scoped_lockable)
/// Escape hatch for functions the analysis cannot model. Every use
/// must carry a comment justifying it; there are currently none in
/// this repo and reviews should keep it that way.
#define NO_THREAD_SAFETY_ANALYSIS \
  DDGMS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ddgms {

/// Annotated exclusive mutex. Same cost and semantics as std::mutex;
/// the capability attribute is what lets clang connect GUARDED_BY
/// fields to Lock/Unlock events.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex — the annotated replacement for
/// std::lock_guard. Scoped-capability semantics: clang knows the
/// mutex is held from construction to end of scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Wait releases and reacquires
/// the mutex, so callers must hold it (REQUIRES) — the analysis treats
/// the capability as continuously held across the wait, matching the
/// caller-visible contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu.mu_); }

  /// Waits until `pred()` holds (loops over spurious wakeups).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) cv_.wait(mu.mu_);
  }

  /// Waits until `pred()` holds or the timeout elapses; returns
  /// pred()'s value on exit.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_SYNC_H_
