#ifndef DDGMS_COMMON_RESOURCE_H_
#define DDGMS_COMMON_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Resource accounting
///
/// A process-wide registry of named, hierarchical byte-accounting
/// pools: every layer that materializes data (ETL output, warehouse
/// tables, OLAP cubes, the cube cache, MDX results, telemetry staging)
/// charges the bytes it allocates — and releases what it retires — to
/// a pool, so "where does memory go per query?" has a first-class
/// answer that EXPLAIN ANALYZE, the metrics registry and the
/// [Telemetry] warehouse can all report.
///
/// Pools form a hierarchy by dotted name: charging "olap.cube.cache"
/// also charges its ancestors "olap.cube" and "olap", plus the
/// implicit process root ("total"). A charge is one relaxed atomic
/// add per ancestor (depth <= 3 in practice) plus a peak CAS.
///
/// Attribution is thread-scoped: a ScopedAccounting RAII guard names
/// the pool that anonymous charge sites (column appends, generic
/// table code) should bill while the guard is the innermost one on
/// the thread. Subsystem entry points open a guard for their pool
/// ("etl", "warehouse", "olap.cube", "mdx", "telemetry"); charges
/// outside any guard land in "other".
///
/// Semantics: pools account *charge events*, not live objects. A
/// subsystem that never calls Release (e.g. ETL, whose output tables
/// are owned by callers) reads as cumulative attribution; a subsystem
/// that does (the cube cache releases evicted cubes) reads as live
/// bytes, and allocated - freed == current holds at all times.
///
/// Like common/metrics the whole subsystem is compiled in but inert
/// by default: every charge is guarded by one relaxed atomic-bool
/// load. Call ResourceMeter::Enable() (the shell does this at
/// startup) to start accounting.
///
/// Naming convention: dotted "<layer>[.<noun>[.<noun>]]" from the
/// same registered layer list ddgms_lint enforces for metric and
/// span names ("etl", "olap.cube", "olap.cube.cache").
/// -------------------------------------------------------------------

/// One accounting pool. Counters are atomics; references returned by
/// ResourceMeter::GetPool() are stable for the process lifetime and
/// may be cached by hot paths.
class ResourcePool {
 public:
  const std::string& name() const { return name_; }
  /// Enclosing pool ("olap.cube" -> "olap"); the root pool for
  /// top-level pools; nullptr only for the root itself.
  const ResourcePool* parent() const { return parent_; }

  /// Adds `bytes` to this pool and every ancestor (allocated, current,
  /// peak, charge count). Callers normally go through the
  /// DDGMS_RESOURCE_* macros so disabled builds skip the call.
  void Charge(uint64_t bytes);
  /// Subtracts `bytes` from the live total of this pool and every
  /// ancestor (freed, current, release count).
  void Release(uint64_t bytes);

  uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  uint64_t freed() const { return freed_.load(std::memory_order_relaxed); }
  /// allocated - freed. May transiently differ from the subtraction of
  /// the two reads above under concurrency; conserved at quiescence.
  int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark of current().
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t charges() const {
    return charges_.load(std::memory_order_relaxed);
  }
  uint64_t releases() const {
    return releases_.load(std::memory_order_relaxed);
  }

  void ResetValues();

 private:
  friend class ResourceMeter;
  ResourcePool(std::string name, ResourcePool* parent)
      : name_(std::move(name)), parent_(parent) {}

  std::string name_;
  ResourcePool* parent_;
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> freed_{0};
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> charges_{0};
  std::atomic<uint64_t> releases_{0};
};

/// Point-in-time copy of one pool's counters.
struct ResourcePoolStats {
  std::string name;
  uint64_t allocated = 0;
  uint64_t freed = 0;
  int64_t current = 0;
  int64_t peak = 0;
  uint64_t charges = 0;
  uint64_t releases = 0;
};

/// Point-in-time view of every pool, sorted by name; the root pool is
/// listed first under the name "total".
struct ResourceSnapshot {
  std::vector<ResourcePoolStats> pools;

  /// Stats for a pool by exact name (nullptr when absent).
  const ResourcePoolStats* pool(const std::string& name) const;

  /// Human-readable aligned listing (the shell's `stats` resource
  /// section).
  std::string ToString() const;
  /// {"total":{...},"etl":{...},...}
  std::string ToJson() const;
};

/// The global pool registry. All methods are thread-safe.
class ResourceMeter {
 public:
  static ResourceMeter& Global();

  /// Master switch (one relaxed atomic, shared by all charge sites).
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() {
    enabled_.store(false, std::memory_order_relaxed);
  }
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Finds or creates a pool (and its dotted-prefix ancestors).
  /// Returned references are stable for the process lifetime.
  ResourcePool& GetPool(const std::string& name) EXCLUDES(mu_);

  /// The implicit root every charge rolls up into; its peak is the
  /// process-wide attributed high-water mark (bench reports surface it
  /// as meter_peak_bytes).
  ResourcePool& root() { return root_; }

  ResourceSnapshot Snapshot() const EXCLUDES(mu_);

  /// Publishes every pool's live/peak bytes as metrics-registry gauges
  /// ("ddgms.resource.bytes_current:<pool>" /
  /// "ddgms.resource.bytes_peak:<pool>") so dashboards and the
  /// [Telemetry] warehouse see resource attribution alongside every
  /// other instrument. No-op while the metrics registry is disabled.
  void PublishToMetrics() const EXCLUDES(mu_);

  /// Zeroes every pool's counters. Registrations (and outstanding
  /// references) stay valid.
  void ResetValues() EXCLUDES(mu_);

  /// Charges/releases against the calling thread's innermost
  /// ScopedAccounting pool ("other" when no guard is open). Callers
  /// normally go through the DDGMS_RESOURCE_* macros.
  static void ChargeCurrent(uint64_t bytes);
  static void ReleaseCurrent(uint64_t bytes);

 private:
  ResourceMeter() : root_("total", nullptr) {}

  ResourcePool root_;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<ResourcePool>> pools_
      GUARDED_BY(mu_);
  static std::atomic<bool> enabled_;
};

/// RAII attribution guard: names the pool that anonymous charge sites
/// on this thread bill while this guard is the innermost one. When the
/// meter is disabled at construction the guard is fully inert (no
/// registry lookup, no TLS write).
class ScopedAccounting {
 public:
  /// `pool_name` should be a stable dotted identifier ("olap.cube");
  /// disabled call sites never build strings.
  explicit ScopedAccounting(const char* pool_name);
  ~ScopedAccounting();

  ScopedAccounting(const ScopedAccounting&) = delete;
  ScopedAccounting& operator=(const ScopedAccounting&) = delete;

  bool active() const { return pool_ != nullptr; }
  /// Bytes charged to the pool since this guard opened (0 when inert).
  /// Single-threaded reading: concurrent charges by other threads to
  /// the same pool are included.
  uint64_t BytesCharged() const;
  /// Bytes released from the pool since this guard opened (0 when
  /// inert).
  uint64_t BytesReleased() const;

  /// The calling thread's innermost active pool (nullptr when none).
  static ResourcePool* Current();

 private:
  ResourcePool* pool_ = nullptr;
  ResourcePool* saved_ = nullptr;
  uint64_t allocated_at_entry_ = 0;
  uint64_t freed_at_entry_ = 0;
};

/// Call-site helpers matching the DDGMS_METRIC_* idiom: one relaxed
/// load on the disabled path; `bytes` is not evaluated while disabled.
#define DDGMS_RESOURCE_CHARGE(bytes)                       \
  do {                                                     \
    if (::ddgms::ResourceMeter::Enabled()) {               \
      ::ddgms::ResourceMeter::ChargeCurrent(bytes);        \
    }                                                      \
  } while (false)

#define DDGMS_RESOURCE_RELEASE(bytes)                      \
  do {                                                     \
    if (::ddgms::ResourceMeter::Enabled()) {               \
      ::ddgms::ResourceMeter::ReleaseCurrent(bytes);       \
    }                                                      \
  } while (false)

}  // namespace ddgms

#endif  // DDGMS_COMMON_RESOURCE_H_
