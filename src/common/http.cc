#include "common/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/faults.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ddgms {

namespace {

/// Hex digit value; -1 for non-hex.
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decodes `in` ('+' becomes space — query-string semantics).
std::string PercentDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size() &&
               HexValue(in[i + 1]) >= 0 && HexValue(in[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(in[i + 1]) * 16 +
                                      HexValue(in[i + 2])));
      i += 2;
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

/// Reads from `fd` until the full head (+ Content-Length body) is in,
/// `max_bytes` is exceeded, or the peer closes. The single
/// fault-injection point covers every read failure shape.
Status ReadRequestBytes(int fd, size_t max_bytes, std::string* out) {
  DDGMS_FAULT_POINT("server.read");
  out->clear();
  char buf[4096];
  size_t body_expected = std::string::npos;  // npos until head complete
  size_t head_end = std::string::npos;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss(StrFormat("recv failed: %s",
                                        std::strerror(errno)));
    }
    if (n == 0) {
      if (out->empty()) {
        return Status::DataLoss("connection closed before request");
      }
      return Status::OK();  // peer half-closed after sending
    }
    out->append(buf, static_cast<size_t>(n));
    if (out->size() > max_bytes) {
      return Status::OutOfRange("request exceeds max_request_bytes");
    }
    if (head_end == std::string::npos) {
      head_end = out->find("\r\n\r\n");
      if (head_end == std::string::npos) continue;
      // Head complete: how much body is promised?
      body_expected = 0;
      const std::string head = ToLower(out->substr(0, head_end));
      const size_t cl = head.find("content-length:");
      if (cl != std::string::npos) {
        auto len = ParseInt64(
            Trim(head.substr(cl + 15, head.find('\n', cl) - cl - 15)));
        if (len.ok() && *len >= 0) {
          body_expected = static_cast<size_t>(*len);
        }
      }
    }
    if (head_end != std::string::npos &&
        out->size() >= head_end + 4 + body_expected) {
      return Status::OK();
    }
  }
}

/// Writes all of `data` (looping over partial sends). SIGPIPE is
/// avoided with MSG_NOSIGNAL; a gone peer surfaces as DataLoss.
Status WriteAll(int fd, const std::string& data) {
  DDGMS_FAULT_POINT("server.write");
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss(StrFormat("send failed: %s",
                                        std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& name,
                                    const std::string& fallback) const {
  auto it = query.find(name);
  return it == query.end() ? fallback : it->second;
}

HttpResponse HttpResponse::Text(std::string body, int status) {
  return HttpResponse{status, "text/plain; charset=utf-8",
                      std::move(body)};
}

HttpResponse HttpResponse::Html(std::string body, int status) {
  return HttpResponse{status, "text/html; charset=utf-8",
                      std::move(body)};
}

HttpResponse HttpResponse::Json(std::string body, int status) {
  return HttpResponse{status, "application/json", std::move(body)};
}

HttpResponse HttpResponse::NotFound(const std::string& path) {
  return Text("not found: " + path + "\n", 404);
}

HttpResponse HttpResponse::MethodNotAllowed(const std::string& method) {
  return Text("method not allowed: " + method + "\n", 405);
}

HttpResponse HttpResponse::BadRequest(const std::string& why) {
  return Text("bad request: " + why + "\n", 400);
}

HttpResponse HttpResponse::InternalError(const std::string& why) {
  return Text("internal error: " + why + "\n", 500);
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Result<HttpRequest> ParseHttpRequest(const std::string& raw) {
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::ParseError("truncated request head");
  }
  const std::vector<std::string> lines =
      Split(raw.substr(0, head_end), '\n');
  if (lines.empty()) return Status::ParseError("empty request");

  HttpRequest request;
  {
    // "GET /path?query HTTP/1.1"
    const std::vector<std::string> parts =
        Split(std::string(Trim(lines[0])), ' ');
    if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
      return Status::ParseError("malformed request line");
    }
    request.method = parts[0];
    request.target = parts[1];
    const size_t q = parts[1].find('?');
    request.path = PercentDecode(parts[1].substr(0, q));
    if (q != std::string::npos) {
      for (const std::string& pair :
           Split(parts[1].substr(q + 1), '&')) {
        if (pair.empty()) continue;
        const size_t eq = pair.find('=');
        request.query[PercentDecode(pair.substr(0, eq))] =
            eq == std::string::npos ? ""
                                    : PercentDecode(pair.substr(eq + 1));
      }
    }
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("malformed header line");
    }
    request.headers[ToLower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  request.body = raw.substr(head_end + 4);
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              HttpReasonPhrase(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_pending < 1) options_.max_pending = 1;
}

HttpServer::~HttpServer() { Stop().IgnoreError(); }

void HttpServer::Handle(const std::string& method,
                        const std::string& path, Handler handler) {
  MutexLock lock(mu_);
  routes_.push_back({method, path, std::move(handler)});
}

std::vector<std::string> HttpServer::RoutePaths() const {
  MutexLock lock(mu_);
  std::vector<std::string> paths;
  for (const Route& route : routes_) {
    if (paths.empty() || paths.back() != route.path) {
      paths.push_back(route.path);
    }
  }
  return paths;
}

Status HttpServer::Start() {
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("server already running");
    }
    stopping_ = false;
    frozen_routes_ = routes_;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket failed: %s",
                                      std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::Internal(
        StrFormat("bind %s:%d failed: %s", options_.bind_address.c_str(),
                  options_.port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status = Status::Internal(
        StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);
  }

  listen_fd_ = fd;
  {
    MutexLock lock(mu_);
    running_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  DDGMS_LOG_INFO("server.start")
      .With("address", options_.bind_address)
      .With("port", port())
      .With("workers", options_.num_workers);
  return Status::OK();
}

Status HttpServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) {
      return Status::FailedPrecondition("server not running");
    }
    stopping_ = true;
  }
  // Unblock accept(); workers wake via the condvar.
  ::shutdown(listen_fd_, SHUT_RDWR);
  pending_cv_.NotifyAll();
  accept_thread_.join();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    MutexLock lock(mu_);
    // Connections accepted but never served: close them politely.
    while (!pending_.empty()) {
      ::close(pending_.front());
      pending_.pop_front();
    }
    running_ = false;
  }
  DDGMS_LOG_INFO("server.stop").With("port", port());
  port_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

bool HttpServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    {
      MutexLock lock(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      DDGMS_METRIC_INC("ddgms.server.errors");
      DDGMS_LOG_WARN("server.accept_error")
          .With("errno", std::strerror(errno));
      return;  // listener is gone; Stop() will join us
    }
    // Fault point: a simulated accept-path failure drops the freshly
    // accepted connection (the client sees a reset) but the listener
    // must keep serving subsequent ones.
    if (FaultRegistry::Global().enabled()) {
      const Status fault =
          FaultRegistry::Global().OnHit("server.accept");
      if (!fault.ok()) {
        ::close(fd);
        DDGMS_METRIC_INC("ddgms.server.errors");
        continue;
      }
    }
    if (options_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_ms / 1000;
      tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    bool rejected = false;
    {
      MutexLock lock(mu_);
      if (pending_.size() >= options_.max_pending) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      // Shed load without tying up a worker.
      WriteAll(fd, SerializeHttpResponse(HttpResponse::Text(
                       "server overloaded\n", 503)))
          .IgnoreError();
      ::close(fd);
      DDGMS_METRIC_INC("ddgms.server.rejected");
      continue;
    }
    pending_cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (pending_.empty() && !stopping_) pending_cv_.Wait(mu_);
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else {
        return;  // stopping and drained
      }
    }
    const Status status = ServeConnection(fd);
    if (!status.ok()) {
      DDGMS_METRIC_INC("ddgms.server.errors");
      DDGMS_LOG_DEBUG("server.connection_error")
          .With("status", status.ToString());
    }
  }
}

namespace {

/// RAII +1/-1 on the active-connections gauge (multiple workers serve
/// concurrently, so Set() would clobber).
class ScopedConnectionGauge {
 public:
  ScopedConnectionGauge() {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Global()
          .GetGauge("ddgms.server.connections_active")
          .Add(1.0);
    }
  }
  ~ScopedConnectionGauge() {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Global()
          .GetGauge("ddgms.server.connections_active")
          .Add(-1.0);
    }
  }
};

}  // namespace

Status HttpServer::ServeConnection(int fd) {
  ScopedConnectionGauge active;
  std::string raw;
  Status status = ReadRequestBytes(fd, options_.max_request_bytes, &raw);
  if (!status.ok()) {
    if (status.IsOutOfRange()) {
      WriteAll(fd, SerializeHttpResponse(HttpResponse::Text(
                       "payload too large\n", 413)))
          .IgnoreError();
    }
    ::close(fd);
    return status;
  }

  TraceSpan span("server.request");
  ScopedLatencyTimer timer("ddgms.server.request_latency_us");
  DDGMS_METRIC_INC("ddgms.server.requests");

  HttpResponse response;
  Result<HttpRequest> request = ParseHttpRequest(raw);
  if (request.ok()) {
    span.SetAttribute("method", request->method);
    span.SetAttribute("path", request->path);
    response = Dispatch(*request);
  } else {
    response = HttpResponse::BadRequest(request.status().message());
  }
  span.SetAttribute("status", response.status);
  if (response.status >= 400) {
    DDGMS_METRIC_INC("ddgms.server.responses_error");
  }
  DDGMS_LOG_DEBUG("server.request")
      .With("path", request.ok() ? request->path : std::string("?"))
      .With("status", response.status);

  status = WriteAll(fd, SerializeHttpResponse(response));
  ::close(fd);
  return status;
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  bool path_known = false;
  for (const Route& route : frozen_routes_) {
    if (route.path != request.path) continue;
    path_known = true;
    if (route.method == request.method) {
      return route.handler(request);
    }
    // HEAD piggybacks on GET handlers; the body is sent regardless
    // (acceptable for an introspection server).
    if (request.method == "HEAD" && route.method == "GET") {
      return route.handler(request);
    }
  }
  return path_known ? HttpResponse::MethodNotAllowed(request.method)
                    : HttpResponse::NotFound(request.path);
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& target, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket failed: %s",
                                      std::strerror(errno)));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Status::DataLoss(StrFormat(
        "connect %s:%d failed: %s", host.c_str(), port,
        std::strerror(errno)));
    ::close(fd);
    return status;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  Status status = WriteAll(fd, request);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::DataLoss(StrFormat("recv failed: %s",
                                          std::strerror(errno)));
      break;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (!status.ok()) return status;
  if (response.empty()) {
    return Status::DataLoss("connection closed without a response");
  }
  return response;
}

Result<std::pair<int, std::string>> ParseHttpResponse(
    const std::string& raw) {
  if (!StartsWith(raw, "HTTP/")) {
    return Status::ParseError("not an HTTP response");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) {
    return Status::ParseError("malformed status line");
  }
  DDGMS_ASSIGN_OR_RETURN(int64_t code,
                         ParseInt64(raw.substr(sp + 1, 3)));
  const size_t head_end = raw.find("\r\n\r\n");
  std::string body =
      head_end == std::string::npos ? "" : raw.substr(head_end + 4);
  return std::make_pair(static_cast<int>(code), std::move(body));
}

}  // namespace ddgms
