#include "common/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/annotations.h"
#include "common/faults.h"
#include "common/strings.h"

namespace ddgms {

namespace {

// Shared CSV state machine. `allow_newlines` distinguishes the whole-
// document parser from the single-record parser. When `quoted_empty`
// is non-null it receives rows-parallel flags: 1 for a field that was
// quoted and empty ("" in the source), which parses to the same string
// as a bare empty field but means "empty string" rather than "null" to
// loaders that encode the difference.
DDGMS_HOT Result<std::vector<std::vector<std::string>>> ParseCsvImpl(
    const std::string& text, char delim, bool allow_newlines,
    std::vector<std::vector<uint8_t>>* quoted_empty = nullptr) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  std::vector<uint8_t> flags;
  // One buffer per document, reused across fields; its backing storage
  // is moved into the result as each field completes.
  std::string field;  // NOLINT(ddgms-hot-path-alloc)
  bool in_quotes = false;
  bool row_started = false;
  bool field_was_quoted = false;

  // Unquoted newlines bound the record count, so the outer result
  // vector never reallocates mid-parse.
  rows.reserve(static_cast<size_t>(
                   std::count(text.begin(), text.end(), '\n')) +
               1);
  if (quoted_empty != nullptr) quoted_empty->reserve(rows.capacity());

  auto finish_field = [&] {
    // Per-field output appends: the buffers grow amortized and are
    // moved out whole per row, so there is no per-element fix beyond
    // the row-level reserves above.
    flags.push_back(field_was_quoted && field.empty() ? 1 : 0);  // NOLINT(ddgms-hot-path-alloc)
    fields.push_back(std::move(field));  // NOLINT(ddgms-hot-path-alloc)
    field.clear();
    field_was_quoted = false;
  };
  auto finish_row = [&] {
    rows.push_back(std::move(fields));
    fields.clear();
    if (quoted_empty != nullptr) quoted_empty->push_back(std::move(flags));
    flags.clear();
    row_started = false;
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          // Char appends to the reused field buffer grow amortized.
          field.push_back('"');  // NOLINT(ddgms-hot-path-alloc)
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      if ((c == '\n' || c == '\r') && !allow_newlines) {
        return Status::ParseError("newline inside quoted field");
      }
      field.push_back(c);  // NOLINT(ddgms-hot-path-alloc)
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_started = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == delim) {
      finish_field();
      row_started = true;
      ++i;
      continue;
    }
    if (c == '\r' || c == '\n') {
      // LF, CRLF and lone CR all terminate the record.
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      if (row_started || !field.empty()) {
        finish_field();
        finish_row();
      }
      ++i;
      continue;
    }
    field.push_back(c);  // NOLINT(ddgms-hot-path-alloc)
    row_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError(
        StrFormat("unterminated quoted field at end of input "
                  "(after %zu complete records)",
                  rows.size()));
  }
  if (row_started || !field.empty() || !fields.empty()) {
    finish_field();
    finish_row();
  }
  return rows;
}

}  // namespace

Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim) {
  auto rows = ParseCsvImpl(line, delim, /*allow_newlines=*/false);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return std::vector<std::string>{std::string()};
  if (rows->size() > 1) {
    return Status::ParseError("multiple records in single CSV line");
  }
  return std::move((*rows)[0]);
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char delim) {
  return ParseCsvImpl(text, delim, /*allow_newlines=*/true);
}

Result<CsvDocument> ParseCsvDocument(const std::string& text, char delim) {
  CsvDocument doc;
  DDGMS_ASSIGN_OR_RETURN(
      doc.rows,
      ParseCsvImpl(text, delim, /*allow_newlines=*/true, &doc.quoted_empty));
  return doc;
}

namespace {

// Splits `text` into raw physical records on unquoted line endings
// (LF / CRLF / lone CR), preserving quoted embedded newlines inside a
// record. The final record is flagged when it ends with an open quote.
struct RawRecord {
  std::string text;
  bool unterminated_quote = false;
};

std::vector<RawRecord> SplitRecords(const std::string& text) {
  std::vector<RawRecord> records;
  std::string current;
  bool in_quotes = false;
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    char c = text[i];
    if (c == '"') {
      // Doubled quotes inside a quoted field toggle twice: no net
      // state change, which is exactly right for splitting.
      in_quotes = !in_quotes;
      current.push_back(c);
      continue;
    }
    if (!in_quotes && (c == '\n' || c == '\r')) {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      records.push_back(RawRecord{std::move(current), false});
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) {
    records.push_back(RawRecord{std::move(current), in_quotes});
  }
  return records;
}

}  // namespace

Result<std::vector<CsvRecord>> ParseCsvLenient(
    const std::string& text, char delim, QuarantineReport* quarantine) {
  std::vector<CsvRecord> out;
  size_t record_number = 0;
  for (RawRecord& raw : SplitRecords(text)) {
    ++record_number;
    if (raw.text.empty()) continue;  // blank line, as in strict parsing
    Status bad;
    if (raw.unterminated_quote) {
      bad = Status::ParseError("unterminated quoted field at end of input");
    } else {
      std::vector<std::vector<uint8_t>> quoted_empty;
      auto rows =
          ParseCsvImpl(raw.text, delim, /*allow_newlines=*/true,
                       &quoted_empty);
      if (rows.ok()) {
        if (rows->empty()) continue;
        out.push_back(CsvRecord{record_number, std::move((*rows)[0]),
                                std::move(quoted_empty[0])});
        continue;
      }
      bad = rows.status();
    }
    if (quarantine != nullptr) {
      quarantine->Add("csv-parse", record_number, /*field=*/"",
                      std::move(bad), TruncateForQuarantine(raw.text));
    }
  }
  return out;
}

std::string FormatCsvField(const std::string& field, char delim,
                           bool force_quote) {
  bool needs_quote =
      force_quote || field.find_first_of("\"\r\n") != std::string::npos ||
      field.find(delim) != std::string::npos;
  if (!needs_quote) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += FormatCsvField(fields[i], delim);
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  DDGMS_FAULT_POINT("csv.read_file");
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s' for reading: %s",
                                      path.c_str(),
                                      std::strerror(errno)));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::DataLoss(StrFormat("error reading '%s': %s",
                                      path.c_str(),
                                      std::strerror(errno)));
  }
  return buf.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  DDGMS_FAULT_POINT("csv.write_file");
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal(StrFormat("cannot open '%s' for writing: %s",
                                      path.c_str(),
                                      std::strerror(errno)));
  }
  out << contents;
  out.flush();
  if (!out) {
    return Status::DataLoss(StrFormat("short write to '%s': %s",
                                      path.c_str(),
                                      std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace ddgms
