#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace ddgms {

namespace {

// Shared CSV state machine. `allow_newlines` distinguishes the whole-
// document parser from the single-record parser.
Result<std::vector<std::vector<std::string>>> ParseCsvImpl(
    const std::string& text, char delim, bool allow_newlines) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      if ((c == '\n' || c == '\r') && !allow_newlines) {
        return Status::ParseError("newline inside quoted field");
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_started = true;
      ++i;
      continue;
    }
    if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      row_started = true;
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;  // Tolerate CRLF by skipping CR.
      continue;
    }
    if (c == '\n') {
      if (row_started || !field.empty()) {
        fields.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(fields));
        fields.clear();
        row_started = false;
      }
      ++i;
      continue;
    }
    field.push_back(c);
    row_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field");
  }
  if (row_started || !field.empty() || !fields.empty()) {
    fields.push_back(std::move(field));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace

Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim) {
  auto rows = ParseCsvImpl(line, delim, /*allow_newlines=*/false);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return std::vector<std::string>{std::string()};
  if (rows->size() > 1) {
    return Status::ParseError("multiple records in single CSV line");
  }
  return std::move((*rows)[0]);
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char delim) {
  return ParseCsvImpl(text, delim, /*allow_newlines=*/true);
}

std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(delim);
    const std::string& f = fields[i];
    bool needs_quote = f.find_first_of("\"\r\n") != std::string::npos ||
                       f.find(delim) != std::string::npos;
    if (!needs_quote) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open file for writing: " + path);
  }
  out << contents;
  if (!out) {
    return Status::DataLoss("short write to file: " + path);
  }
  return Status::OK();
}

}  // namespace ddgms
