#ifndef DDGMS_COMMON_RNG_H_
#define DDGMS_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ddgms {

/// Deterministic pseudo-random generator (splitmix64 seeded xoshiro256++).
/// Implemented by hand (not std::*_distribution) so that sequences are
/// identical across standard libraries and platforms: the synthetic DiScRi
/// cohort, tests, and benches all depend on reproducible streams.
///
/// The hot single-instruction-ish draws (NextUint64, NextDouble, ...)
/// stay inline; the heavier distributions (NextGaussian, Categorical)
/// live in rng.cc like every other common/ sibling.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-initializes the state from a seed via splitmix64.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextUint64() % range);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (deterministic, platform-independent).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_RNG_H_
