#ifndef DDGMS_COMMON_STATUS_H_
#define DDGMS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ddgms {

/// Error category for a failed operation. `kOk` indicates success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kDataLoss,
  kUnimplemented,
  kInternal,
};

/// Every StatusCode, for exhaustive iteration (tests assert each one
/// has a canonical name and round-trips through StatusCodeFromName, so
/// a new code cannot silently miss coverage). Keep in sync with the
/// enum above.
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,
    StatusCode::kInvalidArgument,
    StatusCode::kNotFound,
    StatusCode::kAlreadyExists,
    StatusCode::kOutOfRange,
    StatusCode::kFailedPrecondition,
    StatusCode::kParseError,
    StatusCode::kDataLoss,
    StatusCode::kUnimplemented,
    StatusCode::kInternal,
};

/// Returns the canonical name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: parses a canonical name back into a
/// code. Returns false when `name` matches no known code.
bool StatusCodeFromName(const std::string& name, StatusCode* code);

/// Result of an operation that can fail. Cheap to copy on the OK path
/// (no message allocation); carries a code and human-readable message on
/// failure. Mirrors the RocksDB/Arrow Status idiom: public APIs in this
/// library return Status (or Result<T>) instead of throwing.
///
/// The class itself is [[nodiscard]]: silently dropping a returned
/// Status is a compile error under -Werror. Call IgnoreError() at the
/// rare sites where discarding is a deliberate decision, so intent is
/// visible and greppable (no `(void)` casts).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly discards this status. The only sanctioned way to drop
  /// a [[nodiscard]] Status — documents that the error (if any) was
  /// considered and deliberately ignored.
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller. Requires the enclosing
/// function to return Status.
#define DDGMS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::ddgms::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace ddgms

#endif  // DDGMS_COMMON_STATUS_H_
