#ifndef DDGMS_COMMON_SLO_H_
#define DDGMS_COMMON_SLO_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// SLO engine: declarative objectives + multi-window burn-rate alerts
///
/// An SloDef declares one objective over instruments the process
/// already records — a latency target on a histogram, an error-rate
/// ceiling over a pair of counters, or a stall budget on an event
/// counter. The engine derives windowed views through WindowRegistry
/// and, on every evaluation, computes a *burn rate* per window:
///
///   burn = bad_fraction / error_budget      (budget = 1 - objective)
///
/// A burn of 1.0 consumes the error budget exactly at the sustainable
/// pace; 10 means the budget burns ten times too fast. Following the
/// multi-window discipline, an alert fires only when BOTH the fast
/// window (is it happening *now*?) and the slow window (has it been
/// happening long enough to matter?) exceed the firing threshold —
/// short blips age out of the fast window before the slow window
/// corroborates, so single outliers do not page.
///
/// Per-SLO state machine: ok → warning → firing → resolved → ok.
/// Every transition emits a structured `slo.<state>` flight-recorder
/// event and the engine maintains ddgms.slo.* gauges (state, fast and
/// slow burn per SLO) so scrapers and the `[Telemetry]` warehouse see
/// alert history. Like the other subsystems the engine is inert
/// behind one relaxed atomic gate; evaluation is driven either by the
/// background evaluator thread (StartEvaluator) or explicitly with
/// EvaluateAt() for deterministic tests.
/// -------------------------------------------------------------------

enum class SloKind {
  /// Fraction of histogram observations at/below latency_target_us
  /// must be >= objective.
  kLatency,
  /// error_counter / total_counter must stay <= 1 - objective.
  kErrorRate,
  /// stall_counter increments per hour must stay <= allowed_per_hour.
  kStallBudget,
};

const char* SloKindName(SloKind kind);

enum class SloState {
  kOk = 0,
  kWarning = 1,
  kFiring = 2,
  /// A firing alert whose burn dropped back under the warning
  /// threshold; decays to kOk on the next healthy evaluation.
  kResolved = 3,
};

const char* SloStateName(SloState state);

/// One declarative objective. `name` is the stable lower_snake_case
/// identity used as the :detail suffix of the ddgms.slo.* gauges.
struct SloDef {
  std::string name;
  SloKind kind = SloKind::kLatency;
  std::string description;

  /// kLatency: the observed histogram and the target bound.
  std::string latency_histogram;
  double latency_target_us = 250000;

  /// kErrorRate: failures / attempts counters. total_counter must
  /// count every attempt (successes and failures).
  std::string error_counter;
  std::string total_counter;

  /// kLatency + kErrorRate: required good fraction (0 < objective < 1).
  double objective = 0.99;

  /// kStallBudget: the monotonic event counter and its hourly budget.
  std::string stall_counter;
  double allowed_per_hour = 6.0;

  /// Multi-window burn-rate parameters.
  int64_t fast_window_seconds = 60;
  int64_t slow_window_seconds = 300;
  double firing_burn_rate = 10.0;
  double warning_burn_rate = 1.0;
};

/// Point-in-time view of one SLO's state machine.
struct SloStatus {
  std::string name;
  SloKind kind = SloKind::kLatency;
  std::string description;
  SloState state = SloState::kOk;
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
  /// Events seen in the fast window on the last evaluation.
  uint64_t fast_window_count = 0;
  uint64_t transitions = 0;
  /// Time of the last state change (TickAt timeline), -1 when none.
  int64_t last_transition_us = -1;

  std::string ToString() const;
  std::string ToJson() const;
};

struct SloEvaluatorOptions {
  /// Evaluation (and window tick) cadence.
  int period_ms = 1000;
};

/// The global SLO engine. All methods are thread-safe.
class SloEngine {
 public:
  static SloEngine& Global();

  /// Master switch (one relaxed atomic; same idiom as MetricsRegistry).
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Registers one SLO and tracks its instruments over the fast/slow
  /// windows. InvalidArgument on a malformed definition or a
  /// duplicate name.
  Status Register(const SloDef& def) EXCLUDES(mu_);

  /// The stock objectives the shell installs: mdx_latency (execute
  /// histogram vs 250ms), server_availability (HTTP 5xx rate) and
  /// query_stalls (watchdog stall budget). Idempotent.
  Status RegisterDefaultSlos() EXCLUDES(mu_);

  /// Ticks the WindowRegistry, recomputes every burn rate and runs the
  /// state machines, emitting slo.* events and updating ddgms.slo.*
  /// gauges on transitions. No-op while disabled. Evaluate() uses the
  /// steady clock; EvaluateAt() is for deterministic tests.
  void Evaluate() EXCLUDES(mu_);
  void EvaluateAt(int64_t now_us) EXCLUDES(mu_);

  std::vector<SloStatus> Snapshot() const EXCLUDES(mu_);
  /// {"enabled":...,"evaluator_running":...,"slos":[...]}
  std::string ToJson() const EXCLUDES(mu_);

  size_t slo_count() const EXCLUDES(mu_);

  /// Spawns the evaluator thread. FailedPrecondition when already
  /// running; InvalidArgument on a non-positive period.
  Status StartEvaluator(SloEvaluatorOptions options = {}) EXCLUDES(mu_);
  /// Joins the evaluator. FailedPrecondition when not running.
  Status StopEvaluator() EXCLUDES(mu_);
  bool evaluator_running() const EXCLUDES(mu_);

  /// Drops every SLO (stops the evaluator first if needed).
  void ResetForTesting() EXCLUDES(mu_);

 private:
  struct Slo {
    SloDef def;
    SloState state = SloState::kOk;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    uint64_t fast_count = 0;
    uint64_t transitions = 0;
    int64_t last_transition_us = -1;
  };

  SloEngine() = default;

  void EvaluatorLoop(SloEvaluatorOptions options);
  /// Computes the burn rate of `def` over one window length.
  static void BurnOver(const SloDef& def, int64_t window_seconds,
                       double* burn, uint64_t* count);

  mutable Mutex mu_;
  std::vector<Slo> slos_ GUARDED_BY(mu_);
  bool evaluator_running_ GUARDED_BY(mu_) = false;
  bool defaults_registered_ GUARDED_BY(mu_) = false;
  std::thread evaluator_;
  CondVar evaluator_cv_;
  std::atomic<bool> evaluator_stop_{false};
  static std::atomic<bool> enabled_;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_SLO_H_
