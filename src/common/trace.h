#ifndef DDGMS_COMMON_TRACE_H_
#define DDGMS_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace ddgms {

/// -------------------------------------------------------------------
/// Pipeline tracing
///
/// RAII spans record how long each stage of a flow took and how the
/// stages nest: a span opened while another span is live on the same
/// thread becomes its child. Finished spans land in a global
/// fixed-capacity ring buffer (oldest evicted first) that the shell's
/// `trace` command renders as a tree.
///
/// Like common/faults and common/metrics the collector is compiled in
/// but inert by default: a disabled TraceSpan costs one relaxed
/// atomic load and nothing else (no clock read, no allocation).
/// -------------------------------------------------------------------

/// One finished span as stored by the collector.
struct SpanRecord {
  uint64_t id = 0;
  /// Enclosing span on the same thread; 0 for a root span.
  uint64_t parent_id = 0;
  /// Nesting depth at record time (root = 0). Informational — tree
  /// rendering recomputes structure from parent links.
  int depth = 0;
  std::string name;
  /// Start offset from the collector epoch (first Global() use).
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Global ring-buffer collector of finished spans. Thread-safe.
class TraceCollector {
 public:
  static TraceCollector& Global();

  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Ring capacity (default 4096). Shrinking drops oldest spans.
  void set_capacity(size_t capacity) EXCLUDES(mu_);
  size_t capacity() const EXCLUDES(mu_);

  /// Finished spans in completion order (oldest first).
  std::vector<SpanRecord> Snapshot() const EXCLUDES(mu_);
  /// Atomically snapshots and empties the ring (one lock, so no span
  /// recorded concurrently is lost between the read and the clear).
  /// This is how the telemetry sampler consumes finished spans.
  std::vector<SpanRecord> Drain() EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  /// Spans evicted from the ring since the last Clear().
  size_t dropped() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

  /// Renders the snapshot as an indented tree (children under their
  /// parents, ordered by start time). Spans whose parent was evicted
  /// or is still open are shown at the root.
  std::string ToString() const;
  /// JSON array of span objects, completion order.
  std::string ToJson() const;

  /// Internal (TraceSpan): appends a finished span, evicting the
  /// oldest when full.
  void Record(SpanRecord record) EXCLUDES(mu_);
  /// Internal (TraceSpan): allocates a span id (monotonic, never 0).
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Microseconds since the collector epoch.
  uint64_t NowMicros() const;

  /// Id of the innermost live span on the calling thread (0 when no
  /// span is open, or tracing was disabled when it opened). The event
  /// log stamps every record with this so logs, spans and metrics
  /// join on one id.
  static uint64_t CurrentSpanId();
  /// Parent id of the innermost live span on the calling thread (0 at
  /// the root).
  static uint64_t CurrentParentSpanId();

 private:
  TraceCollector();

  mutable Mutex mu_;
  std::vector<SpanRecord> ring_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_) = 4096;
  /// Next eviction slot once the ring is full.
  size_t head_ GUARDED_BY(mu_) = 0;
  size_t dropped_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
  static std::atomic<bool> enabled_;
};

/// RAII span: opens on construction, records on destruction. Must be
/// destroyed on the thread that created it (parentage is tracked in a
/// thread-local stack). When the collector is disabled at construction
/// the span is inert and every method is a no-op.
class TraceSpan {
 public:
  /// `name` should be a stable operation identifier
  /// ("warehouse.build", "etl.step"); put variable detail in
  /// attributes so disabled call sites never build strings.
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  uint64_t id() const { return record_.id; }

  /// Attaches key=value detail (no-op when inert).
  void SetAttribute(const std::string& key, std::string value);
  void SetAttribute(const std::string& key, const char* value) {
    SetAttribute(key, std::string(value));
  }
  void SetAttribute(const std::string& key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  void SetAttribute(const std::string& key, T value) {
    if (!active_) return;
    SetAttribute(key, std::to_string(value));
  }

 private:
  bool active_ = false;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
  uint64_t saved_parent_ = 0;
  uint64_t saved_grandparent_ = 0;
  int saved_depth_ = 0;
};

}  // namespace ddgms

#endif  // DDGMS_COMMON_TRACE_H_
