#include "report/svg.h"

#include <algorithm>
#include <sstream>

#include "common/csv.h"
#include "common/strings.h"

namespace ddgms::report {

namespace {

std::string EscapeXml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Result<std::string> RenderSvgColumnChart(const Table& grid,
                                         const SvgChartOptions& options) {
  if (grid.num_columns() < 2) {
    return Status::InvalidArgument(
        "chart grid needs a label column and >= 1 data column");
  }
  if (grid.num_rows() == 0) {
    return Status::InvalidArgument("chart grid has no rows");
  }
  const size_t groups = grid.num_rows();
  const size_t series = grid.num_columns() - 1;

  double max_v = 0.0;
  for (size_t c = 1; c < grid.num_columns(); ++c) {
    for (size_t r = 0; r < groups; ++r) {
      auto d = grid.column(c).GetValue(r).AsDouble();
      if (d.ok()) max_v = std::max(max_v, *d);
    }
  }
  if (max_v <= 0.0) max_v = 1.0;

  const double w = static_cast<double>(options.width);
  const double h = static_cast<double>(options.height);
  const double margin_left = 48, margin_right = 16, margin_top = 36,
               margin_bottom = 64;
  const double plot_w = w - margin_left - margin_right;
  const double plot_h = h - margin_top - margin_bottom;
  const double group_w = plot_w / static_cast<double>(groups);
  const double bar_w =
      group_w * 0.8 / static_cast<double>(series);

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
     << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
     << options.width << " " << options.height << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    os << "<text x=\"" << w / 2
       << "\" y=\"20\" text-anchor=\"middle\" font-family=\"sans-serif\" "
          "font-size=\"14\">"
       << EscapeXml(options.title) << "</text>\n";
  }
  // Axes.
  os << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top
     << "\" x2=\"" << margin_left << "\" y2=\"" << margin_top + plot_h
     << "\" stroke=\"#333\"/>\n";
  os << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top + plot_h
     << "\" x2=\"" << margin_left + plot_w << "\" y2=\""
     << margin_top + plot_h << "\" stroke=\"#333\"/>\n";
  // Max-value gridline + label.
  os << "<text x=\"" << margin_left - 6 << "\" y=\"" << margin_top + 4
     << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
        "font-size=\"10\">"
     << FormatDouble(max_v, 2) << "</text>\n";

  // Bars.
  for (size_t r = 0; r < groups; ++r) {
    double gx = margin_left + group_w * static_cast<double>(r) +
                group_w * 0.1;
    for (size_t c = 1; c < grid.num_columns(); ++c) {
      auto d = grid.column(c).GetValue(r).AsDouble();
      double v = d.ok() ? std::max(0.0, *d) : 0.0;
      double bar_h = plot_h * v / max_v;
      double x = gx + bar_w * static_cast<double>(c - 1);
      double y = margin_top + plot_h - bar_h;
      const std::string& color =
          options.palette[(c - 1) % options.palette.size()];
      os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
         << bar_w * 0.92 << "\" height=\"" << bar_h << "\" fill=\""
         << color << "\"/>\n";
    }
    // Group label (rotated if crowded).
    std::string label =
        EscapeXml(grid.column(0).GetValue(r).ToString());
    double lx = gx + group_w * 0.4;
    double ly = margin_top + plot_h + 14;
    os << "<text x=\"" << lx << "\" y=\"" << ly
       << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
          "font-size=\"10\""
       << (groups > 8 ? StrFormat(" transform=\"rotate(45 %.1f %.1f)\"",
                                  lx, ly)
                      : std::string())
       << ">" << label << "</text>\n";
  }
  // Legend.
  double lx = margin_left;
  double ly = h - 14;
  for (size_t c = 1; c < grid.num_columns(); ++c) {
    const std::string& color =
        options.palette[(c - 1) % options.palette.size()];
    os << "<rect x=\"" << lx << "\" y=\"" << ly - 9
       << "\" width=\"10\" height=\"10\" fill=\"" << color << "\"/>\n";
    std::string name = EscapeXml(grid.schema().field(c).name);
    os << "<text x=\"" << lx + 14 << "\" y=\"" << ly
       << "\" font-family=\"sans-serif\" font-size=\"11\">" << name
       << "</text>\n";
    lx += 14.0 + 7.0 * static_cast<double>(name.size()) + 16.0;
  }
  os << "</svg>\n";
  return os.str();
}

Status WriteSvgColumnChart(const Table& grid, const std::string& path,
                           const SvgChartOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(std::string svg,
                         RenderSvgColumnChart(grid, options));
  return WriteFile(path, svg);
}

}  // namespace ddgms::report
