#include "report/render.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.h"

namespace ddgms::report {

Result<std::string> RenderPivot(const Table& grid,
                                const PivotRenderOptions& options) {
  if (grid.num_columns() < 2) {
    return Status::InvalidArgument(
        "pivot grid needs a label column and >= 1 data column");
  }
  const size_t rows = grid.num_rows();
  const size_t data_cols = grid.num_columns() - 1;

  // Assemble a string matrix, tracking numeric totals.
  std::vector<std::vector<std::string>> cells;
  std::vector<double> col_totals(data_cols, 0.0);
  double grand_total = 0.0;

  std::vector<std::string> header;
  header.push_back(grid.schema().field(0).name);
  for (size_t c = 1; c < grid.num_columns(); ++c) {
    header.push_back(grid.schema().field(c).name);
  }
  if (options.row_totals) header.push_back("Total");
  cells.push_back(std::move(header));

  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> line;
    line.push_back(grid.column(0).GetValue(r).ToString());
    double row_total = 0.0;
    for (size_t c = 1; c < grid.num_columns(); ++c) {
      Value v = grid.column(c).GetValue(r);
      if (v.is_null()) {
        line.push_back(options.null_cell);
        continue;
      }
      line.push_back(v.ToString());
      Result<double> d = v.AsDouble();
      if (d.ok()) {
        row_total += *d;
        col_totals[c - 1] += *d;
        grand_total += *d;
      }
    }
    if (options.row_totals) line.push_back(FormatDouble(row_total));
    cells.push_back(std::move(line));
  }
  if (options.column_totals) {
    std::vector<std::string> line;
    line.push_back("Total");
    for (size_t c = 0; c < data_cols; ++c) {
      line.push_back(FormatDouble(col_totals[c]));
    }
    if (options.row_totals) line.push_back(FormatDouble(grand_total));
    cells.push_back(std::move(line));
  }

  // Column widths and layout.
  size_t ncols = cells[0].size();
  std::vector<size_t> widths(ncols, 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
  }
  std::ostringstream os;
  if (!options.title.empty()) {
    os << options.title << "\n";
  }
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      const std::string& s = cells[r][c];
      if (c == 0) {
        os << s << std::string(widths[c] - s.size(), ' ');
      } else {
        os << "  " << std::string(widths[c] - s.size(), ' ') << s;
      }
    }
    os << "\n";
    bool separator_after =
        r == 0 ||
        (options.column_totals && r + 2 == cells.size());
    if (separator_after) {
      size_t total = widths[0];
      for (size_t c = 1; c < ncols; ++c) total += widths[c] + 2;
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

std::string RenderBarChart(const std::vector<std::string>& labels,
                           const std::vector<double>& values,
                           const BarChartOptions& options) {
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  size_t n = std::min(labels.size(), values.size());
  double max_v = 0.0;
  size_t label_w = 0;
  for (size_t i = 0; i < n; ++i) {
    max_v = std::max(max_v, values[i]);
    label_w = std::max(label_w, labels[i].size());
  }
  for (size_t i = 0; i < n; ++i) {
    size_t len =
        max_v > 0.0
            ? static_cast<size_t>(std::lround(
                  values[i] / max_v * static_cast<double>(options.max_width)))
            : 0;
    os << labels[i] << std::string(label_w - labels[i].size(), ' ')
       << " | " << std::string(len, options.bar_char);
    if (options.show_values) {
      os << " " << FormatDouble(values[i]);
    }
    os << "\n";
  }
  return os.str();
}

std::string RenderGroupedBarChart(
    const std::vector<std::string>& categories,
    const std::vector<std::string>& series_names,
    const std::vector<std::vector<double>>& values,
    const GroupedBarChartOptions& options) {
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  double max_v = 0.0;
  size_t label_w = 0;
  for (const std::string& c : categories) {
    label_w = std::max(label_w, c.size());
  }
  size_t series_w = 0;
  for (const std::string& s : series_names) {
    series_w = std::max(series_w, s.size());
  }
  for (const auto& series : values) {
    for (double v : series) max_v = std::max(max_v, v);
  }
  os << "legend:";
  for (size_t s = 0; s < series_names.size(); ++s) {
    char ch = options.series_chars[s % options.series_chars.size()];
    os << " " << ch << "=" << series_names[s];
  }
  os << "\n";
  for (size_t c = 0; c < categories.size(); ++c) {
    for (size_t s = 0; s < series_names.size(); ++s) {
      double v = s < values.size() && c < values[s].size() ? values[s][c]
                                                           : 0.0;
      size_t len =
          max_v > 0.0
              ? static_cast<size_t>(std::lround(
                    v / max_v * static_cast<double>(options.max_width)))
              : 0;
      char ch = options.series_chars[s % options.series_chars.size()];
      os << (s == 0 ? categories[c]
                    : std::string(categories[c].size(), ' '))
         << std::string(label_w - categories[c].size(), ' ') << " | "
         << std::string(len, ch) << " " << FormatDouble(v) << "\n";
    }
  }
  return os.str();
}

Result<std::string> RenderPivotAsChart(
    const Table& grid, const GroupedBarChartOptions& options) {
  if (grid.num_columns() < 2) {
    return Status::InvalidArgument(
        "pivot grid needs a label column and >= 1 data column");
  }
  std::vector<std::string> categories;
  categories.reserve(grid.num_rows());
  for (size_t r = 0; r < grid.num_rows(); ++r) {
    categories.push_back(grid.column(0).GetValue(r).ToString());
  }
  std::vector<std::string> series_names;
  std::vector<std::vector<double>> values;
  for (size_t c = 1; c < grid.num_columns(); ++c) {
    series_names.push_back(grid.schema().field(c).name);
    std::vector<double> series;
    series.reserve(grid.num_rows());
    for (size_t r = 0; r < grid.num_rows(); ++r) {
      Value v = grid.column(c).GetValue(r);
      Result<double> d = v.AsDouble();
      series.push_back(d.ok() ? *d : 0.0);
    }
    values.push_back(std::move(series));
  }
  return RenderGroupedBarChart(categories, series_names, values, options);
}

Result<std::string> RenderHeatmap(const Table& grid,
                                  const HeatmapOptions& options) {
  if (grid.num_columns() < 2) {
    return Status::InvalidArgument(
        "heatmap grid needs a label column and >= 1 data column");
  }
  if (options.ramp.empty()) {
    return Status::InvalidArgument("heatmap ramp must not be empty");
  }
  // Find the maximum for normalization.
  double max_v = 0.0;
  for (size_t c = 1; c < grid.num_columns(); ++c) {
    for (size_t r = 0; r < grid.num_rows(); ++r) {
      Value v = grid.column(c).GetValue(r);
      Result<double> d = v.AsDouble();
      if (d.ok()) max_v = std::max(max_v, *d);
    }
  }
  size_t label_w = grid.schema().field(0).name.size();
  for (size_t r = 0; r < grid.num_rows(); ++r) {
    label_w = std::max(label_w,
                       grid.column(0).GetValue(r).ToString().size());
  }
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  // Column header: first character of each series name per cell slot.
  os << std::string(label_w, ' ') << " ";
  for (size_t c = 1; c < grid.num_columns(); ++c) {
    std::string name = grid.schema().field(c).name;
    name.resize(options.cell_width, ' ');
    os << name;
  }
  os << "\n";
  for (size_t r = 0; r < grid.num_rows(); ++r) {
    std::string label = grid.column(0).GetValue(r).ToString();
    os << label << std::string(label_w - label.size(), ' ') << " ";
    for (size_t c = 1; c < grid.num_columns(); ++c) {
      Value v = grid.column(c).GetValue(r);
      Result<double> d = v.AsDouble();
      char shade = options.ramp.front();
      if (d.ok() && max_v > 0.0) {
        double norm = std::min(std::max(*d / max_v, 0.0), 1.0);
        size_t idx = static_cast<size_t>(
            norm * static_cast<double>(options.ramp.size() - 1) + 0.5);
        shade = options.ramp[idx];
      }
      os << std::string(options.cell_width, shade);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ddgms::report
