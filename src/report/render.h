#ifndef DDGMS_REPORT_RENDER_H_
#define DDGMS_REPORT_RENDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::report {

/// Text rendering of query results — the prototype's stand-in for the
/// paper's Microsoft BI Studio front end (Figs 4-6 are a cross-tab, a
/// grouped column chart and a stacked distribution).

/// Pretty-prints a pivot grid (first column = row labels, remaining
/// columns = numeric cells) with optional row/column totals.
struct PivotRenderOptions {
  bool row_totals = true;
  bool column_totals = true;
  std::string null_cell = ".";
  std::string title;
};

Result<std::string> RenderPivot(const Table& grid,
                                const PivotRenderOptions& options = {});

/// Horizontal bar chart: one labeled bar per (label, value).
struct BarChartOptions {
  size_t max_width = 50;   // bar length of the max value
  char bar_char = '#';
  std::string title;
  bool show_values = true;
};

std::string RenderBarChart(const std::vector<std::string>& labels,
                           const std::vector<double>& values,
                           const BarChartOptions& options = {});

/// Grouped horizontal bar chart: for each category, one bar per series
/// (paper Fig 5: age band x {female, male}).
struct GroupedBarChartOptions {
  size_t max_width = 40;
  std::vector<char> series_chars = {'#', '=', '*', '+'};
  std::string title;
};

std::string RenderGroupedBarChart(
    const std::vector<std::string>& categories,
    const std::vector<std::string>& series_names,
    const std::vector<std::vector<double>>& values,  // [series][category]
    const GroupedBarChartOptions& options = {});

/// Renders a pivot table (row labels + one column per series) as a
/// grouped bar chart. Non-numeric / null cells plot as zero.
Result<std::string> RenderPivotAsChart(
    const Table& grid, const GroupedBarChartOptions& options = {});

/// Density heatmap of a pivot grid: each cell is shaded by its value
/// relative to the grid maximum, using the ramp " .:-=+*#%@". The
/// paper's Visualisation feature — "groups of patients at the edges of
/// overlapping dimensions are easily identified visually".
struct HeatmapOptions {
  std::string title;
  /// Characters from cold to hot; null cells render as the first.
  std::string ramp = " .:-=+*#%@";
  size_t cell_width = 3;
};

Result<std::string> RenderHeatmap(const Table& grid,
                                  const HeatmapOptions& options = {});

}  // namespace ddgms::report

#endif  // DDGMS_REPORT_RENDER_H_
