#ifndef DDGMS_REPORT_SVG_H_
#define DDGMS_REPORT_SVG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::report {

/// Standalone SVG rendering of query results — file-based counterparts
/// of the text charts, for embedding figure reproductions in reports.

struct SvgChartOptions {
  std::string title;
  size_t width = 640;
  size_t height = 400;
  /// Series fill colors, cycled.
  std::vector<std::string> palette = {"#4878a8", "#e8913d", "#6aa84f",
                                      "#a64d79"};
};

/// Grouped vertical column chart from a pivot grid (first column = row
/// labels, remaining numeric columns = one series each). Null /
/// non-numeric cells plot as zero-height columns.
Result<std::string> RenderSvgColumnChart(const Table& grid,
                                         const SvgChartOptions& options = {});

/// Convenience: renders and writes to `path`.
Status WriteSvgColumnChart(const Table& grid, const std::string& path,
                           const SvgChartOptions& options = {});

}  // namespace ddgms::report

#endif  // DDGMS_REPORT_SVG_H_
