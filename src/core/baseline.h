#ifndef DDGMS_CORE_BASELINE_H_
#define DDGMS_CORE_BASELINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "olap/cube.h"
#include "table/table.h"

namespace ddgms::core {

/// The comparator architecture for bench A1: a DGMS *without* the data
/// warehouse intermediation — multivariate queries run directly against
/// the flat transformed extract (DG-SQL style), recomputing group-by
/// tuples over full-width values on every query. It answers the same
/// CubeQuery shapes as the warehouse path so results can be compared
/// cell-for-cell; what it lacks is the dimensional structure (integer
/// surrogate keys, member dictionaries, hierarchies, feedback
/// dimensions).
class BaselineDgms {
 public:
  /// The flat extract must outlive the baseline.
  explicit BaselineDgms(const Table* flat) : flat_(flat) {}

  /// Executes a CubeQuery by translation to a flat group-by: axis
  /// attributes become group-by columns, slicers become IN predicates,
  /// measures become aggregates. Axis member restrictions apply as
  /// predicates too. Returns the flattened cell table (axis columns then
  /// measure columns) sorted by axis values.
  Result<Table> Execute(const olap::CubeQuery& query) const;

 private:
  const Table* flat_;
};

}  // namespace ddgms::core

#endif  // DDGMS_CORE_BASELINE_H_
