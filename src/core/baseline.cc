#include "core/baseline.h"

#include "table/predicate.h"
#include "table/query.h"

namespace ddgms::core {

Result<Table> BaselineDgms::Execute(const olap::CubeQuery& query) const {
  if (flat_ == nullptr) {
    return Status::InvalidArgument("baseline has no table");
  }
  if (query.measures.empty()) {
    return Status::InvalidArgument("query needs >= 1 measure");
  }
  std::vector<PredicatePtr> preds;
  for (const olap::SlicerSpec& s : query.slicers) {
    preds.push_back(In(s.attribute, s.values));
  }
  std::vector<std::string> group_by;
  for (const olap::AxisSpec& a : query.axes) {
    group_by.push_back(a.attribute);
    if (!a.members.empty()) {
      preds.push_back(In(a.attribute, a.members));
    }
  }
  TableQuery tq(flat_);
  if (!preds.empty()) tq.Where(AllOf(std::move(preds)));
  tq.GroupBy(group_by);
  tq.Aggregate(query.measures);
  DDGMS_ASSIGN_OR_RETURN(Table result, tq.Run());
  if (!group_by.empty()) {
    DDGMS_ASSIGN_OR_RETURN(result, result.SortBy(group_by));
  }
  return result;
}

}  // namespace ddgms::core
