#ifndef DDGMS_CORE_DD_DGMS_H_
#define DDGMS_CORE_DD_DGMS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/metrics.h"
#include "common/quarantine.h"
#include "common/result.h"
#include "etl/pipeline.h"
#include "kb/knowledge_base.h"
#include "mdx/executor.h"
#include "olap/cube.h"
#include "table/store.h"
#include "table/table.h"
#include "warehouse/persist.h"
#include "warehouse/telemetry.h"
#include "warehouse/warehouse.h"

namespace ddgms::core {

/// End-to-end robustness configuration for a DD-DGMS build: one knob
/// threaded through ingestion (CSV parse), the transform pipeline and
/// the star-schema build.
struct RobustnessOptions {
  /// kStrict (default): fail fast on the first bad row anywhere, the
  /// historical behaviour. kLenient: quarantine bad rows at every
  /// stage and keep loading; the merged QuarantineReport is surfaced
  /// in transform_report().quarantine (and its ToString()).
  ErrorMode error_mode = ErrorMode::kStrict;
  /// Retry policy for flaky connector operations (BuildFromStore's
  /// fetch). Defaults to 3 attempts with exponential backoff on
  /// kDataLoss/kInternal.
  RetryPolicy retry;
  /// Optional external accumulator: every quarantined row from every
  /// build/rebuild (including AcquireData reloads) is also appended
  /// here, so monitoring can watch quality across loads. Must outlive
  /// the DdDgms.
  QuarantineReport* quarantine_sink = nullptr;
};

/// The integrated Data-Driven Decision Guidance Management System
/// (paper Fig 2): raw clinical extracts flow through the transformation
/// pipeline into a star-schema warehouse; reporting (OLTP/OLAP/MDX),
/// prediction, analytics and optimisation all read from the warehouse;
/// derived findings accumulate in the knowledge base, and accepted
/// findings can be folded back into the warehouse as feedback
/// dimensions — closing the loop.
class DdDgms {
 public:
  /// Builds the platform: runs `pipeline` over a copy of `raw`, then
  /// populates the warehouse per `schema_def`. Strict error handling.
  static Result<DdDgms> Build(Table raw,
                              const etl::TransformPipeline& pipeline,
                              warehouse::StarSchemaDef schema_def) {
    return Build(std::move(raw), pipeline, std::move(schema_def),
                 RobustnessOptions{});
  }

  /// Build with explicit robustness semantics. `ingest_quarantine`
  /// lets callers that loaded `raw` themselves in lenient mode hand
  /// over the ingestion-stage quarantine so the surfaced report covers
  /// the whole load.
  static Result<DdDgms> Build(Table raw,
                              const etl::TransformPipeline& pipeline,
                              warehouse::StarSchemaDef schema_def,
                              RobustnessOptions robustness,
                              QuarantineReport ingest_quarantine = {});

  /// The fully fault-tolerant ingestion path: fetches `resource` from
  /// `store` (retrying transient connector failures per
  /// `robustness.retry`), parses it per `csv_options` (error mode and
  /// quarantine sink are overridden from `robustness`), and builds.
  static Result<DdDgms> BuildFromStore(
      DataStore* store, const std::string& resource,
      CsvReadOptions csv_options, const etl::TransformPipeline& pipeline,
      warehouse::StarSchemaDef schema_def,
      RobustnessOptions robustness = {});

  DdDgms(DdDgms&&) = default;
  DdDgms& operator=(DdDgms&&) = default;
  DdDgms(const DdDgms&) = delete;
  DdDgms& operator=(const DdDgms&) = delete;

  /// The transformed flat extract (post-pipeline).
  const Table& transformed() const { return transformed_; }
  const etl::TransformReport& transform_report() const { return report_; }

  const warehouse::Warehouse& warehouse() const { return *warehouse_; }
  warehouse::Warehouse* mutable_warehouse() { return warehouse_.get(); }

  /// OLAP entry point.
  Result<olap::Cube> Query(const olap::CubeQuery& query) const;

  /// MDX entry point. Queries addressing the medical cube run against
  /// the clinical warehouse; `SELECT ... FROM [Telemetry]` runs against
  /// a warehouse built from the telemetry sampler's history, so the
  /// platform analyses its own observability data with the same engine.
  Result<mdx::MdxResult> QueryMdx(const std::string& mdx_text) const;

  /// EXPLAIN ANALYZE: executes `mdx_text` and returns the per-operator
  /// plan tree (times, cardinalities, cube-cache hit/miss, resource
  /// bytes). The query genuinely runs — cardinalities and timings are
  /// measured, not estimated.
  Result<olap::PlanNode> ExplainMdx(const std::string& mdx_text) const;

  /// The flight recorder's telemetry sampler (lazily created). Call
  /// telemetry().Sample() to snapshot metrics and drain spans/events;
  /// QueryMdx over [Telemetry] then sees the accumulated history.
  warehouse::TelemetrySampler& telemetry() const;

  /// SQL entry point over the OLTP layer: the transformed extract is
  /// registered as `extract`, the fact table as `fact`, and each
  /// dimension table under its (lower-cased) dimension name.
  Result<Table> QuerySql(const std::string& sql) const;

  /// Materializes a joined fact+attribute view for the analytics layer.
  Result<Table> IsolateSubset(
      const std::vector<std::string>& attributes) const;

  /// Knowledge base (shared across features).
  kb::KnowledgeBase& knowledge_base() { return kb_; }
  const kb::KnowledgeBase& knowledge_base() const { return kb_; }

  /// Feedback loop (paper §IV Data Warehouse: "further dimensions are
  /// introduced to capture user feedback"): labels every fact row and
  /// registers the labels as a new dimension for future analyses.
  Status AddFeedbackDimension(
      const std::string& dimension_name, const std::string& attribute,
      const std::function<Value(const warehouse::Warehouse&, size_t)>&
          labeler);

  /// Closed-loop data acquisition: appends newly collected raw rows.
  /// Without durable storage this re-runs the pipeline over the full
  /// extract and rebuilds the warehouse (the knowledge base is
  /// preserved). With durable storage attached it switches to the
  /// incremental path: the batch alone is transformed, written to the
  /// write-ahead journal (durable before it is acknowledged), then
  /// appended to the warehouse in place — so acknowledged acquisitions
  /// survive a crash without waiting for the next Checkpoint().
  Status AcquireData(const Table& new_raw_rows);

  /// -----------------------------------------------------------------
  /// Durable storage (crash-safe snapshots + write-ahead journal; see
  /// warehouse/persist.h for the on-disk protocol).
  /// -----------------------------------------------------------------

  /// Attaches `dir` (must exist) as this platform's durable home and
  /// commits an initial snapshot of the current warehouse. From then
  /// on AcquireData journals batches; call Checkpoint() after
  /// non-journaled mutations (AddFeedbackDimension) or to compact the
  /// journal into a fresh snapshot.
  Status AttachDurableStorage(const std::string& dir,
                              warehouse::DurabilityOptions options = {});

  /// Commits a new snapshot generation of the current warehouse state
  /// and starts a fresh journal.
  Status Checkpoint();

  bool durable() const { return store_ != nullptr; }
  const warehouse::DurableWarehouseStore* durable_store() const {
    return store_.get();
  }

  /// Strict load from a durable store: MANIFEST, snapshot and journal
  /// must all verify — corruption is an error (use RecoverDurable).
  /// The pipeline is needed so subsequent AcquireData calls can
  /// transform new batches; the schema comes from the snapshot.
  static Result<DdDgms> LoadDurable(const std::string& dir,
                                    const etl::TransformPipeline& pipeline,
                                    RobustnessOptions robustness = {},
                                    warehouse::DurabilityOptions options = {});

  /// Crash recovery: salvages the newest intact state (falling back
  /// across snapshot generations, truncating a torn journal tail) and
  /// reports exactly what was recovered via `report` (required).
  static Result<DdDgms> RecoverDurable(
      const std::string& dir, const etl::TransformPipeline& pipeline,
      warehouse::RecoveryReport* report, RobustnessOptions robustness = {},
      warehouse::DurabilityOptions options = {});

  /// The robustness configuration this instance was built with
  /// (reused by AcquireData rebuilds).
  const RobustnessOptions& robustness() const { return robustness_; }

  /// Point-in-time view of the process-wide metrics registry (all
  /// ddgms.* counters, gauges and latency histograms). Empty unless
  /// MetricsRegistry::Enable() was called before the instrumented
  /// work ran.
  static ::ddgms::MetricsSnapshot MetricsSnapshot() {
    return MetricsRegistry::Global().Snapshot();
  }

 private:
  DdDgms(Table raw, etl::TransformPipeline pipeline,
         warehouse::StarSchemaDef schema_def,
         RobustnessOptions robustness,
         QuarantineReport ingest_quarantine)
      : raw_(std::move(raw)),
        pipeline_(std::move(pipeline)),
        schema_def_(std::move(schema_def)),
        robustness_(std::move(robustness)),
        ingest_quarantine_(std::move(ingest_quarantine)) {}

  Status Rebuild();

  /// Builds a facade around an already-materialized warehouse (the
  /// durable load/recover paths, which have no raw extract).
  static DdDgms FromDurable(warehouse::Warehouse wh,
                            warehouse::DurableWarehouseStore store,
                            const etl::TransformPipeline& pipeline,
                            RobustnessOptions robustness);

  /// The incremental, journaled AcquireData path.
  Status AcquireDataDurable(const Table& new_raw_rows);

  Table raw_;  // untouched accumulated extract
  etl::TransformPipeline pipeline_;
  warehouse::StarSchemaDef schema_def_;
  RobustnessOptions robustness_;
  /// Ingestion-stage quarantine captured at load time; re-merged into
  /// the surfaced report on every rebuild.
  QuarantineReport ingest_quarantine_;
  Table transformed_;
  etl::TransformReport report_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  /// Lazily created by telemetry(); mutable so const query paths can
  /// sample and (re)build the self-observation warehouse.
  mutable std::unique_ptr<warehouse::TelemetrySampler> telemetry_;
  /// Rebuilt in place on every [Telemetry] query so pointers held by
  /// in-flight executors stay valid, mirroring warehouse_.
  mutable std::unique_ptr<warehouse::Warehouse> telemetry_warehouse_;
  /// Lazily created by QueryMdx for clinical-cube queries. Safe across
  /// AcquireData rebuilds because Rebuild assigns the warehouse in
  /// place (pointer stable) and the cache invalidates itself on the
  /// warehouse's generation stamp.
  mutable std::unique_ptr<olap::CachingCubeEngine> cube_cache_;
  /// Non-null once durable storage is attached/loaded.
  std::unique_ptr<warehouse::DurableWarehouseStore> store_;
  kb::KnowledgeBase kb_;
};

}  // namespace ddgms::core

#endif  // DDGMS_CORE_DD_DGMS_H_
