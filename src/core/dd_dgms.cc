#include "core/dd_dgms.h"

#include "table/sql.h"

namespace ddgms::core {

Result<DdDgms> DdDgms::Build(Table raw,
                             const etl::TransformPipeline& pipeline,
                             warehouse::StarSchemaDef schema_def) {
  DdDgms dgms(std::move(raw), pipeline, std::move(schema_def));
  DDGMS_RETURN_IF_ERROR(dgms.Rebuild());
  return dgms;
}

Status DdDgms::Rebuild() {
  Table working = raw_;
  DDGMS_ASSIGN_OR_RETURN(report_, pipeline_.Run(&working));
  transformed_ = std::move(working);
  warehouse::StarSchemaBuilder builder(schema_def_);
  DDGMS_ASSIGN_OR_RETURN(warehouse::Warehouse wh,
                         builder.Build(transformed_));
  if (warehouse_ == nullptr) {
    warehouse_ = std::make_unique<warehouse::Warehouse>(std::move(wh));
  } else {
    // Assign in place so engine/cache pointers into the facade stay
    // valid across AcquireData rebuilds.
    *warehouse_ = std::move(wh);
  }
  return Status::OK();
}

Result<olap::Cube> DdDgms::Query(const olap::CubeQuery& query) const {
  olap::CubeEngine engine(warehouse_.get());
  return engine.Execute(query);
}

Result<mdx::MdxResult> DdDgms::QueryMdx(const std::string& mdx_text) const {
  mdx::MdxExecutor executor(warehouse_.get());
  return executor.Execute(mdx_text);
}

Result<Table> DdDgms::QuerySql(const std::string& sql) const {
  SqlEngine engine;
  engine.RegisterTable("extract", &transformed_);
  engine.RegisterTable("fact", &warehouse_->fact());
  for (const warehouse::Dimension& dim : warehouse_->dimensions()) {
    engine.RegisterTable(dim.name(), &dim.table());
  }
  return engine.Execute(sql);
}

Result<Table> DdDgms::IsolateSubset(
    const std::vector<std::string>& attributes) const {
  return warehouse_->JoinedView(attributes);
}

Status DdDgms::AddFeedbackDimension(
    const std::string& dimension_name, const std::string& attribute,
    const std::function<Value(const warehouse::Warehouse&, size_t)>&
        labeler) {
  return warehouse_->AddFeedbackDimension(dimension_name, attribute,
                                          labeler);
}

Status DdDgms::AcquireData(const Table& new_raw_rows) {
  DDGMS_RETURN_IF_ERROR(raw_.Concat(new_raw_rows));
  return Rebuild();
}

}  // namespace ddgms::core
