#include "core/dd_dgms.h"

#include <chrono>

#include "common/log.h"
#include "common/query_registry.h"
#include "common/strings.h"
#include "common/trace.h"
#include "mdx/parser.h"
#include "table/sql.h"

namespace ddgms::core {

Result<DdDgms> DdDgms::Build(Table raw,
                             const etl::TransformPipeline& pipeline,
                             warehouse::StarSchemaDef schema_def,
                             RobustnessOptions robustness,
                             QuarantineReport ingest_quarantine) {
  DdDgms dgms(std::move(raw), pipeline, std::move(schema_def),
              std::move(robustness), std::move(ingest_quarantine));
  DDGMS_RETURN_IF_ERROR(dgms.Rebuild());
  return dgms;
}

Result<DdDgms> DdDgms::BuildFromStore(
    DataStore* store, const std::string& resource,
    CsvReadOptions csv_options, const etl::TransformPipeline& pipeline,
    warehouse::StarSchemaDef schema_def, RobustnessOptions robustness) {
  if (store == nullptr) {
    return Status::InvalidArgument("null data store");
  }
  TraceSpan span("core.build_from_store");
  span.SetAttribute("resource", resource);
  QuarantineReport ingest;
  csv_options.error_mode = robustness.error_mode;
  csv_options.quarantine = &ingest;
  DDGMS_ASSIGN_OR_RETURN(
      std::string text,
      Retry(
          robustness.retry, [&] { return store->Fetch(resource); },
          /*stats=*/nullptr, "store.fetch"));
  DDGMS_ASSIGN_OR_RETURN(Table raw, Table::FromCsv(text, csv_options));
  if (robustness.quarantine_sink != nullptr) {
    robustness.quarantine_sink->Merge(ingest);
  }
  return Build(std::move(raw), pipeline, std::move(schema_def),
               std::move(robustness), std::move(ingest));
}

Status DdDgms::Rebuild() {
  DDGMS_FAULT_POINT("core.rebuild");
  TraceSpan rebuild_span("core.rebuild");
  rebuild_span.SetAttribute("raw_rows", raw_.num_rows());
  ScopedLatencyTimer rebuild_timer("ddgms.core.rebuild_latency_us");
  Table working = raw_;
  etl::PipelineRunOptions pipeline_options;
  pipeline_options.error_mode = robustness_.error_mode;
  DDGMS_ASSIGN_OR_RETURN(etl::TransformReport report,
                         pipeline_.Run(&working, pipeline_options));
  transformed_ = std::move(working);
  warehouse::StarSchemaBuilder builder(schema_def_);
  warehouse::BuildOptions build_options;
  build_options.error_mode = robustness_.error_mode;
  build_options.quarantine = &report.quarantine;
  DDGMS_ASSIGN_OR_RETURN(warehouse::Warehouse wh,
                         builder.Build(transformed_, build_options));
  if (robustness_.quarantine_sink != nullptr) {
    robustness_.quarantine_sink->Merge(report.quarantine);
  }
  // Surface the merged view: ingestion-stage rows first, then this
  // run's pipeline and star-schema rows.
  QuarantineReport merged = ingest_quarantine_;
  merged.Merge(report.quarantine);
  report.quarantine = std::move(merged);
  report_ = std::move(report);
  if (warehouse_ == nullptr) {
    warehouse_ = std::make_unique<warehouse::Warehouse>(std::move(wh));
  } else {
    // Assign in place so engine/cache pointers into the facade stay
    // valid across AcquireData rebuilds.
    *warehouse_ = std::move(wh);
  }
  rebuild_span.SetAttribute("fact_rows", warehouse_->fact().num_rows());
  rebuild_span.SetAttribute("quarantined", report_.quarantine.size());
  DDGMS_LOG_INFO("core.rebuild")
      .With("raw_rows", raw_.num_rows())
      .With("fact_rows", warehouse_->fact().num_rows())
      .With("quarantined", report_.quarantine.size());
  DDGMS_METRIC_INC("ddgms.core.rebuilds");
  return Status::OK();
}

Result<olap::Cube> DdDgms::Query(const olap::CubeQuery& query) const {
  olap::CubeEngine engine(warehouse_.get());
  return engine.Execute(query);
}

warehouse::TelemetrySampler& DdDgms::telemetry() const {
  if (telemetry_ == nullptr) {
    telemetry_ = std::make_unique<warehouse::TelemetrySampler>();
  }
  return *telemetry_;
}

Result<mdx::MdxResult> DdDgms::QueryMdx(const std::string& mdx_text) const {
  // Live-registered for /queryz and the stall watchdog. ExplainMdx
  // delegates here, so one registration covers both entry points; the
  // executor reports compile/execute stage transitions through the
  // thread-local channel this record opens.
  ScopedQueryRecord inflight("mdx", mdx_text);
  // Parse here (rather than inside MdxExecutor::Execute(text)) so the
  // FROM clause can route the query: the medical cube goes to the
  // clinical warehouse, [Telemetry] to a warehouse built from the
  // sampler's accumulated history.
  const auto parse_start = std::chrono::steady_clock::now();
  mdx::MdxQuery query;
  {
    TraceSpan parse_span("mdx.parse");
    QueryRegistry::SetCurrentStage("parse");
    DDGMS_ASSIGN_OR_RETURN(query, mdx::Parse(mdx_text));
  }
  const double parse_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - parse_start)
          .count();

  const warehouse::Warehouse* target = warehouse_.get();
  if (!EqualsIgnoreCase(query.cube_name, warehouse_->def().fact_name) &&
      EqualsIgnoreCase(query.cube_name, "Telemetry")) {
    DDGMS_ASSIGN_OR_RETURN(warehouse::Warehouse wh,
                           telemetry().BuildWarehouse());
    if (telemetry_warehouse_ == nullptr) {
      telemetry_warehouse_ =
          std::make_unique<warehouse::Warehouse>(std::move(wh));
    } else {
      *telemetry_warehouse_ = std::move(wh);
    }
    target = telemetry_warehouse_.get();
  }

  mdx::MdxExecutor executor(target);
  if (target == warehouse_.get()) {
    // Clinical queries share the facade's cube cache. [Telemetry]
    // queries bypass it: their warehouse is rebuilt per query, so the
    // generation stamp would invalidate every entry anyway.
    if (cube_cache_ == nullptr) {
      cube_cache_ =
          std::make_unique<olap::CachingCubeEngine>(warehouse_.get());
    }
    executor.set_cube_cache(cube_cache_.get());
  }
  DDGMS_ASSIGN_OR_RETURN(mdx::MdxResult result, executor.Execute(query));
  result.profile.stages.insert(result.profile.stages.begin(),
                               mdx::MdxProfile::Stage{"parse", parse_us});
  result.profile.total_micros += parse_us;
  mdx::AttachParseStage(&result.profile.plan, parse_us);
  return result;
}

Result<olap::PlanNode> DdDgms::ExplainMdx(const std::string& mdx_text) const {
  DDGMS_ASSIGN_OR_RETURN(mdx::MdxResult result, QueryMdx(mdx_text));
  return std::move(result.profile.plan);
}

Result<Table> DdDgms::QuerySql(const std::string& sql) const {
  SqlEngine engine;
  engine.RegisterTable("extract", &transformed_);
  engine.RegisterTable("fact", &warehouse_->fact());
  for (const warehouse::Dimension& dim : warehouse_->dimensions()) {
    engine.RegisterTable(dim.name(), &dim.table());
  }
  return engine.Execute(sql);
}

Result<Table> DdDgms::IsolateSubset(
    const std::vector<std::string>& attributes) const {
  return warehouse_->JoinedView(attributes);
}

Status DdDgms::AddFeedbackDimension(
    const std::string& dimension_name, const std::string& attribute,
    const std::function<Value(const warehouse::Warehouse&, size_t)>&
        labeler) {
  return warehouse_->AddFeedbackDimension(dimension_name, attribute,
                                          labeler);
}

Status DdDgms::AcquireData(const Table& new_raw_rows) {
  if (store_ != nullptr) return AcquireDataDurable(new_raw_rows);
  DDGMS_RETURN_IF_ERROR(raw_.Concat(new_raw_rows));
  return Rebuild();
}

Status DdDgms::AcquireDataDurable(const Table& new_raw_rows) {
  DDGMS_FAULT_POINT("core.acquire_durable");
  TraceSpan span("core.acquire_durable");
  span.SetAttribute("raw_rows", new_raw_rows.num_rows());
  // Transform just the batch. Deterministic steps (cleaning,
  // discretisation) behave exactly as in a full rebuild;
  // batch-windowed steps (cardinality) number within the batch, which
  // replay reproduces bit-for-bit because the journal stores the
  // transformed rows, not the raw ones.
  Table batch = new_raw_rows;
  etl::PipelineRunOptions pipeline_options;
  pipeline_options.error_mode = robustness_.error_mode;
  DDGMS_ASSIGN_OR_RETURN(etl::TransformReport batch_report,
                         pipeline_.Run(&batch, pipeline_options));
  // Write-ahead: the batch is journaled (and fsynced, by default)
  // before it is applied, so an OK from this call means the rows
  // survive a crash even though no snapshot was taken.
  DDGMS_RETURN_IF_ERROR(store_->AppendBatch(batch));
  DDGMS_RETURN_IF_ERROR(warehouse_->AppendRows(batch));
  // Keep the facade's flat extracts in step for QuerySql("extract")
  // and future non-durable rebuilds. A facade recovered from disk
  // starts with empty extracts; adopt the batch schema then.
  if (raw_.num_columns() == 0) {
    raw_ = new_raw_rows;
  } else {
    DDGMS_RETURN_IF_ERROR(raw_.Concat(new_raw_rows));
  }
  if (transformed_.num_columns() == 0) {
    transformed_ = std::move(batch);
  } else {
    DDGMS_RETURN_IF_ERROR(transformed_.Concat(batch));
  }
  if (robustness_.quarantine_sink != nullptr) {
    robustness_.quarantine_sink->Merge(batch_report.quarantine);
  }
  report_.quarantine.Merge(batch_report.quarantine);
  report_.input_rows += batch_report.input_rows;
  report_.output_rows += batch_report.output_rows;
  span.SetAttribute("fact_rows", warehouse_->fact().num_rows());
  DDGMS_METRIC_INC("ddgms.core.durable_acquisitions");
  return Status::OK();
}

Status DdDgms::AttachDurableStorage(const std::string& dir,
                                    warehouse::DurabilityOptions options) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition(
        "durable storage is already attached (" + store_->dir() + ")");
  }
  DDGMS_ASSIGN_OR_RETURN(warehouse::DurableWarehouseStore store,
                         warehouse::DurableWarehouseStore::Open(dir, options));
  DDGMS_RETURN_IF_ERROR(store.CommitSnapshot(*warehouse_));
  store_ = std::make_unique<warehouse::DurableWarehouseStore>(
      std::move(store));
  return Status::OK();
}

Status DdDgms::Checkpoint() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition("no durable storage attached");
  }
  return store_->CommitSnapshot(*warehouse_);
}

DdDgms DdDgms::FromDurable(warehouse::Warehouse wh,
                           warehouse::DurableWarehouseStore store,
                           const etl::TransformPipeline& pipeline,
                           RobustnessOptions robustness) {
  DdDgms dgms(Table(), pipeline, wh.def(), std::move(robustness),
              QuarantineReport{});
  dgms.warehouse_ = std::make_unique<warehouse::Warehouse>(std::move(wh));
  dgms.store_ = std::make_unique<warehouse::DurableWarehouseStore>(
      std::move(store));
  return dgms;
}

Result<DdDgms> DdDgms::LoadDurable(const std::string& dir,
                                   const etl::TransformPipeline& pipeline,
                                   RobustnessOptions robustness,
                                   warehouse::DurabilityOptions options) {
  DDGMS_ASSIGN_OR_RETURN(warehouse::DurableWarehouseStore store,
                         warehouse::DurableWarehouseStore::Open(dir, options));
  DDGMS_ASSIGN_OR_RETURN(warehouse::Warehouse wh, store.Load());
  return FromDurable(std::move(wh), std::move(store), pipeline,
                     std::move(robustness));
}

Result<DdDgms> DdDgms::RecoverDurable(const std::string& dir,
                                      const etl::TransformPipeline& pipeline,
                                      warehouse::RecoveryReport* report,
                                      RobustnessOptions robustness,
                                      warehouse::DurabilityOptions options) {
  DDGMS_ASSIGN_OR_RETURN(warehouse::DurableWarehouseStore store,
                         warehouse::DurableWarehouseStore::Open(dir, options));
  DDGMS_ASSIGN_OR_RETURN(warehouse::Warehouse wh, store.Recover(report));
  return FromDurable(std::move(wh), std::move(store), pipeline,
                     std::move(robustness));
}

}  // namespace ddgms::core
