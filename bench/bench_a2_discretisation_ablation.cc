// Experiment A2: discretisation algorithm ablation (paper §IV.1 and
// ref [17]). Compares the clinical (manual) FBG scheme against
// equal-width, equal-frequency, entropy-MDL and ChiMerge on the
// cohort, reporting bins, information gain against the diabetes label,
// statistical robustness, and runtime.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "discri/schemes.h"
#include "etl/discretize.h"

namespace {

using ddgms::Table;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;
using ddgms::etl::DiscretisationScheme;
using ddgms::etl::DiscretizeOptions;

struct LabeledColumn {
  std::vector<double> values;
  std::vector<std::string> labels;
};

LabeledColumn CollectColumn(const char* column) {
  const Table& flat = SharedDgms().transformed();
  const auto* col = MustOk(flat.ColumnByName(column), "column");
  const auto* label =
      MustOk(flat.ColumnByName("DiabetesStatus"), "label");
  LabeledColumn out;
  for (size_t i = 0; i < flat.num_rows(); ++i) {
    if (col->IsNull(i) || label->IsNull(i)) continue;
    auto v = col->NumericAt(i);
    if (!v.ok()) continue;
    out.values.push_back(*v);
    out.labels.push_back(label->StringAt(i));
  }
  return out;
}

void Report(const char* name, const DiscretisationScheme& scheme,
            const LabeledColumn& data) {
  auto q = MustOk(
      ddgms::etl::EvaluateScheme(scheme, data.values, data.labels),
      "evaluate");
  std::printf("%-16s bins=%zu  info_gain=%.4f  H(y|band)=%.4f  "
              "min_bin_frac=%.3f\n",
              name, q.num_bins, q.information_gain,
              q.conditional_entropy, q.min_bin_fraction);
}

void PrintAblation() {
  std::printf("=== A2: discretisation ablation (FBG vs diabetes label) "
              "===\n\n");
  LabeledColumn fbg = CollectColumn("FBG");
  DiscretizeOptions opt;
  opt.num_bins = 4;
  opt.max_bins = 4;

  Report("clinical", ddgms::discri::FbgScheme(), fbg);
  Report("equal-width",
         MustOk(ddgms::etl::EqualWidthScheme("FBG", fbg.values, 4), "ew"),
         fbg);
  Report("equal-freq",
         MustOk(ddgms::etl::EqualFrequencyScheme("FBG", fbg.values, 4),
                "ef"),
         fbg);
  Report("entropy-MDL",
         MustOk(ddgms::etl::EntropyMdlScheme("FBG", fbg.values,
                                             fbg.labels, opt),
                "mdl"),
         fbg);
  Report("chi-merge",
         MustOk(ddgms::etl::ChiMergeScheme("FBG", fbg.values, fbg.labels,
                                           opt),
                "chi"),
         fbg);
  std::printf(
      "\n(expected shape: supervised methods match or beat the manual "
      "clinical\nscheme on information gain; equal-width trails on "
      "skewed columns)\n\n");
}

void BM_EqualWidth(benchmark::State& state) {
  LabeledColumn fbg = CollectColumn("FBG");
  for (auto _ : state) {
    auto scheme = ddgms::etl::EqualWidthScheme("FBG", fbg.values, 4);
    benchmark::DoNotOptimize(scheme);
  }
}
DDGMS_BENCHMARK(BM_EqualWidth);

void BM_EqualFrequency(benchmark::State& state) {
  LabeledColumn fbg = CollectColumn("FBG");
  for (auto _ : state) {
    auto scheme =
        ddgms::etl::EqualFrequencyScheme("FBG", fbg.values, 4);
    benchmark::DoNotOptimize(scheme);
  }
}
DDGMS_BENCHMARK(BM_EqualFrequency);

void BM_EntropyMdl(benchmark::State& state) {
  LabeledColumn fbg = CollectColumn("FBG");
  for (auto _ : state) {
    auto scheme =
        ddgms::etl::EntropyMdlScheme("FBG", fbg.values, fbg.labels);
    benchmark::DoNotOptimize(scheme);
  }
}
DDGMS_BENCHMARK(BM_EntropyMdl)->Unit(benchmark::kMicrosecond);

void BM_ChiMerge(benchmark::State& state) {
  LabeledColumn fbg = CollectColumn("FBG");
  DiscretizeOptions opt;
  opt.max_bins = 4;
  for (auto _ : state) {
    auto scheme = ddgms::etl::ChiMergeScheme("FBG", fbg.values,
                                             fbg.labels, opt);
    benchmark::DoNotOptimize(scheme);
  }
}
DDGMS_BENCHMARK(BM_ChiMerge)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  return ddgms::bench::BenchMain(argc, argv, "bench_a2_discretisation_ablation");
}
