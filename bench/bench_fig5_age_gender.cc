// Experiment Fig 5: age and gender distribution of patients with
// diabetes. Prints the OLAP outcome at 10-year granularity, drills
// down to 5-year bands (exposing the 70-75 male / 75-80 female split
// and the drop of female diabetics past ~78), renders both as charts,
// and times the drill-down path.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "discri/schemes.h"
#include "report/render.h"
#include "report/svg.h"

namespace {

using ddgms::AggFn;
using ddgms::AggSpec;
using ddgms::Value;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;

std::vector<Value> BandMembers(
    const ddgms::etl::DiscretisationScheme& scheme) {
  std::vector<Value> members;
  for (const std::string& l : scheme.labels()) {
    members.push_back(Value::Str(l));
  }
  return members;
}

ddgms::olap::CubeQuery Fig5Query() {
  ddgms::olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand10",
             BandMembers(ddgms::discri::AgeBand10Scheme())},
            {"PersonalInformation", "Gender", {}}};
  q.slicers = {{"MedicalCondition", "DiabetesStatus",
                {Value::Str("Type2")}}};
  q.measures = {AggSpec{AggFn::kCount, "", "patients"}};
  return q;
}

void PrintFig5() {
  auto& dgms = SharedDgms();
  std::printf(
      "=== Fig 5: age and gender distribution of patients with "
      "diabetes ===\n\n");
  auto coarse = MustOk(dgms.Query(Fig5Query()), "fig5 coarse");
  auto coarse_grid = MustOk(coarse.Pivot(0, 1), "fig5 pivot");
  std::printf("%s\n",
              MustOk(ddgms::report::RenderPivot(
                         coarse_grid,
                         {.title = "10-year age bands (females=F)"}),
                     "render")
                  .c_str());
  std::printf("%s\n",
              MustOk(ddgms::report::RenderPivotAsChart(coarse_grid),
                     "chart")
                  .c_str());

  auto drilled = MustOk(coarse.DrillDown(0), "fig5 drilldown");
  // Dice to the scheme's label order so bands render chronologically.
  auto fine = MustOk(
      drilled.Dice("PersonalInformation", "AgeBand5",
                   BandMembers(ddgms::discri::AgeBand5Scheme())),
      "fig5 order");
  auto fine_grid = MustOk(fine.Pivot(0, 1), "fig5 fine pivot");
  std::printf("\n%s\n",
              MustOk(ddgms::report::RenderPivot(
                         fine_grid,
                         {.title = "drill-down: 5-year age bands"}),
                     "render")
                  .c_str());
  std::printf("%s\n",
              MustOk(ddgms::report::RenderPivotAsChart(fine_grid),
                     "chart")
                  .c_str());
  std::printf("%s\n",
              MustOk(ddgms::report::RenderHeatmap(
                         fine_grid, {.title = "density heatmap "
                                              "(paper: Visualisation)"}),
                     "heatmap")
                  .c_str());

  // SVG reproduction of the figure, alongside the text rendering.
  if (ddgms::report::WriteSvgColumnChart(
          fine_grid, "fig5_age_gender.svg",
          {.title = "Fig 5: diabetic attendances by 5-year age band "
                    "and gender"})
          .ok()) {
    std::printf("(SVG written to fig5_age_gender.svg)\n\n");
  }

  auto count = [&](const char* band, const char* g) {
    Value v = fine.CellValue({Value::Str(band), Value::Str(g)});
    return v.is_null() ? int64_t{0} : v.int_value();
  };
  std::printf(
      "paper-shape checks:\n"
      "  70-75: M=%lld vs F=%lld (paper: males dominate)\n"
      "  75-80: F=%lld vs M=%lld (paper: females majority)\n"
      "  80-85 F=%lld vs 75-80 F=%lld (paper: female share drops past "
      "~78)\n\n",
      static_cast<long long>(count("70-75", "M")),
      static_cast<long long>(count("70-75", "F")),
      static_cast<long long>(count("75-80", "F")),
      static_cast<long long>(count("75-80", "M")),
      static_cast<long long>(count("80-85", "F")),
      static_cast<long long>(count("75-80", "F")));
}

void BM_Fig5CoarseQuery(benchmark::State& state) {
  auto& dgms = SharedDgms();
  auto q = Fig5Query();
  for (auto _ : state) {
    auto cube = dgms.Query(q);
    benchmark::DoNotOptimize(cube);
  }
}
DDGMS_BENCHMARK(BM_Fig5CoarseQuery)->Unit(benchmark::kMicrosecond);

void BM_Fig5DrillDown(benchmark::State& state) {
  auto& dgms = SharedDgms();
  auto coarse = MustOk(dgms.Query(Fig5Query()), "coarse");
  for (auto _ : state) {
    auto fine = coarse.DrillDown(0);
    benchmark::DoNotOptimize(fine);
  }
}
DDGMS_BENCHMARK(BM_Fig5DrillDown)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFig5();
  return ddgms::bench::BenchMain(argc, argv, "bench_fig5_age_gender");
}
