// Experiment A1: warehouse intermediation vs DG-SQL-style direct
// querying of the flat extract (the architecture claim of paper §IV).
// Both paths answer identical CubeQuery shapes; the sweep varies the
// number of dimensions on the axes. The warehouse path groups by small
// integer surrogate keys against deduplicated members; the baseline
// re-hashes full-width attribute values per query.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "core/baseline.h"
#include "olap/cache.h"
#include "warehouse/persist.h"
#include "warehouse/snapshot.h"

namespace {

using ddgms::AggFn;
using ddgms::AggSpec;
using ddgms::Value;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;

ddgms::olap::CubeQuery QueryWithDims(int dims) {
  static const std::pair<const char*, const char*> kAxes[] = {
      {"PersonalInformation", "AgeBand"},
      {"PersonalInformation", "Gender"},
      {"MedicalCondition", "DiabetesStatus"},
      {"FastingBloods", "FBGBand"},
      {"BloodPressure", "LyingDBPBand"},
      {"ExerciseRoutine", "ExerciseRoutine"},
  };
  ddgms::olap::CubeQuery q;
  for (int i = 0; i < dims && i < 6; ++i) {
    q.axes.push_back({kAxes[i].first, kAxes[i].second, {}});
  }
  q.measures = {AggSpec{AggFn::kCount, "", "n"},
                AggSpec{AggFn::kAvg, "FBG", "avg_fbg"}};
  return q;
}

void PrintHeader() {
  auto& dgms = SharedDgms();
  std::printf(
      "=== A1: warehouse vs direct-on-extract (baseline DGMS) ===\n\n"
      "fact rows: %zu; identical multivariate queries answered by both "
      "paths\n(parity of results is pinned by core_test); timings "
      "below sweep the\nnumber of grouped dimensions from 1 to 6.\n\n",
      dgms.warehouse().num_fact_rows());
}

void BM_WarehouseQuery(benchmark::State& state) {
  auto& dgms = SharedDgms();
  auto q = QueryWithDims(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto cube = dgms.Query(q);
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_WarehouseQuery)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_DirectQuery(benchmark::State& state) {
  auto& dgms = SharedDgms();
  ddgms::core::BaselineDgms baseline(&dgms.transformed());
  auto q = QueryWithDims(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = baseline.Execute(q);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.transformed().num_rows()));
}
DDGMS_BENCHMARK(BM_DirectQuery)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

// Repeated-query amortisation: the warehouse pays dimension-building
// once at load; the baseline re-derives everything per query. This
// measures a 20-query analysis session on each path, including the
// baseline's (repeated) predicate work.
void BM_WarehouseSession20Queries(benchmark::State& state) {
  auto& dgms = SharedDgms();
  for (auto _ : state) {
    for (int dims = 1; dims <= 5; ++dims) {
      for (int rep = 0; rep < 4; ++rep) {
        auto cube = dgms.Query(QueryWithDims(dims));
        benchmark::DoNotOptimize(cube);
      }
    }
  }
}
DDGMS_BENCHMARK(BM_WarehouseSession20Queries)->Unit(benchmark::kMillisecond);

// Cached warehouse session: repeated queries become dictionary hits
// (drill-down-and-back navigation patterns).
void BM_CachedSession20Queries(benchmark::State& state) {
  auto& dgms = SharedDgms();
  ddgms::olap::CachingCubeEngine cache(&dgms.warehouse());
  for (auto _ : state) {
    for (int dims = 1; dims <= 5; ++dims) {
      for (int rep = 0; rep < 4; ++rep) {
        auto cube = cache.Execute(QueryWithDims(dims));
        benchmark::DoNotOptimize(cube);
      }
    }
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}
DDGMS_BENCHMARK(BM_CachedSession20Queries)->Unit(benchmark::kMillisecond);

void BM_DirectSession20Queries(benchmark::State& state) {
  auto& dgms = SharedDgms();
  ddgms::core::BaselineDgms baseline(&dgms.transformed());
  for (auto _ : state) {
    for (int dims = 1; dims <= 5; ++dims) {
      for (int rep = 0; rep < 4; ++rep) {
        auto result = baseline.Execute(QueryWithDims(dims));
        benchmark::DoNotOptimize(result);
      }
    }
  }
}
DDGMS_BENCHMARK(BM_DirectSession20Queries)->Unit(benchmark::kMillisecond);

// Persistence-tier comparison: the binary snapshot (CRC-verified
// columnar pages) vs the CSV directory format, same warehouse, full
// save and full load+verify. The snapshot skips text formatting and
// parsing entirely and re-verifies with CRCs instead of re-inferring
// types, so both directions should win by a wide margin.

void CheckOk(const ddgms::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "persist bench: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

std::string PersistScratchDir(const char* leaf) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/ddgms_bench_persist_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void BM_SnapshotSave(benchmark::State& state) {
  auto& dgms = SharedDgms();
  std::string path = PersistScratchDir("snap") + "/wh.ddws";
  for (auto _ : state) {
    CheckOk(ddgms::warehouse::WriteSnapshotFile(dgms.warehouse(), path,
                                               /*sync=*/false));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  auto& dgms = SharedDgms();
  std::string path = PersistScratchDir("snapload") + "/wh.ddws";
  CheckOk(ddgms::warehouse::WriteSnapshotFile(dgms.warehouse(), path,
                                             /*sync=*/false));
  for (auto _ : state) {
    auto wh = ddgms::warehouse::ReadSnapshotFile(path);
    benchmark::DoNotOptimize(wh);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMillisecond);

void BM_CsvSave(benchmark::State& state) {
  auto& dgms = SharedDgms();
  std::string dir = PersistScratchDir("csv");
  for (auto _ : state) {
    CheckOk(ddgms::warehouse::SaveWarehouse(dgms.warehouse(), dir));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_CsvSave)->Unit(benchmark::kMillisecond);

void BM_CsvLoad(benchmark::State& state) {
  auto& dgms = SharedDgms();
  std::string dir = PersistScratchDir("csvload");
  CheckOk(ddgms::warehouse::SaveWarehouse(dgms.warehouse(), dir));
  for (auto _ : state) {
    auto wh = ddgms::warehouse::LoadWarehouse(dir);
    benchmark::DoNotOptimize(wh);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_CsvLoad)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintHeader();
  return ddgms::bench::BenchMain(argc, argv, "bench_a1_warehouse_vs_direct");
}
