// Experiment A5: decision optimisation (paper §IV). Aggregate-stability
// analysis under dimension add/remove, and constrained treatment-
// regimen search (exact DP vs greedy baseline).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "optimize/regimen.h"
#include "optimize/stability.h"

namespace {

using ddgms::AggFn;
using ddgms::AggSpec;
using ddgms::Value;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;
namespace optimize = ddgms::optimize;

std::vector<std::pair<std::string, std::string>> Candidates() {
  return {{"PersonalInformation", "Gender"},
          {"PersonalInformation", "AgeBand"},
          {"ExerciseRoutine", "ExerciseRoutine"},
          {"FastingBloods", "CholesterolBand"},
          {"BloodPressure", "LyingDBPBand"},
          {"Cardinality", "VisitNumber"}};
}

void PrintStability() {
  auto& dgms = SharedDgms();
  std::printf("=== A5a: aggregate stability under dimension changes "
              "===\n\n");
  std::printf("target: avg(FBG) among diabetic attendances; candidates "
              "are context\ndimensions added one at a time (paper: "
              "\"optimal aggregates would be\nconsistent regardless of "
              "the changes to dimensions\").\n\n");
  optimize::StabilityAnalyzer analyzer(&dgms.warehouse());
  auto report = analyzer.Analyze(
      AggSpec{AggFn::kAvg, "FBG", "mean_fbg"},
      {{"MedicalCondition", "DiabetesStatus", {Value::Str("Type2")}}},
      {{"PersonalInformation", "Gender"},
       {"PersonalInformation", "AgeBand"},
       {"ExerciseRoutine", "ExerciseRoutine"},
       {"BloodPressure", "LyingDBPBand"},
       {"Cardinality", "VisitNumber"}});
  if (report.ok()) {
    std::printf("%s\n\n", report->ToString().c_str());
  } else {
    std::printf("stability failed: %s\n\n",
                report.status().ToString().c_str());
  }
}

std::vector<optimize::TreatmentOption> RegimenOptions() {
  // Costs in program units; benefits estimated HbA1c-style reductions.
  return {
      {"annual_screening", 6.0, 0.55},
      {"dietitian_program", 5.0, 0.40},
      {"exercise_program", 5.0, 0.42},
      {"medication_review", 3.0, 0.25},
      {"podiatry_checks", 2.5, 0.15},
      {"education_course", 4.0, 0.30},
      {"telehealth_monitoring", 7.0, 0.52},
      {"smoking_cessation", 3.5, 0.28},
  };
}

void PrintRegimen() {
  std::printf("=== A5b: regimen optimisation under budget ===\n\n");
  auto options = RegimenOptions();
  for (double budget : {8.0, 12.0, 18.0, 25.0}) {
    auto dp = optimize::OptimizeRegimen(options, budget);
    auto greedy = optimize::GreedyRegimen(options, budget);
    if (!dp.ok() || !greedy.ok()) continue;
    std::printf("budget %5.1f: DP benefit %.3f (cost %.1f) | greedy "
                "benefit %.3f (cost %.1f)%s\n",
                budget, dp->total_benefit, dp->total_cost,
                greedy->total_benefit, greedy->total_cost,
                dp->total_benefit > greedy->total_benefit + 1e-9
                    ? "  <- DP wins"
                    : "");
  }
  std::printf("\n");
}

void BM_StabilityAnalysis(benchmark::State& state) {
  auto& dgms = SharedDgms();
  optimize::StabilityAnalyzer analyzer(&dgms.warehouse());
  for (auto _ : state) {
    auto report = analyzer.Analyze(
        AggSpec{AggFn::kAvg, "FBG", "mean_fbg"},
        {{"MedicalCondition", "DiabetesStatus", {Value::Str("Type2")}}},
        Candidates());
    benchmark::DoNotOptimize(report);
  }
}
DDGMS_BENCHMARK(BM_StabilityAnalysis)->Unit(benchmark::kMillisecond);

void BM_RegimenDp(benchmark::State& state) {
  auto options = RegimenOptions();
  for (auto _ : state) {
    auto plan = optimize::OptimizeRegimen(options, 15.0);
    benchmark::DoNotOptimize(plan);
  }
}
DDGMS_BENCHMARK(BM_RegimenDp)->Unit(benchmark::kMicrosecond);

void BM_RegimenGreedy(benchmark::State& state) {
  auto options = RegimenOptions();
  for (auto _ : state) {
    auto plan = optimize::GreedyRegimen(options, 15.0);
    benchmark::DoNotOptimize(plan);
  }
}
DDGMS_BENCHMARK(BM_RegimenGreedy);

}  // namespace

int main(int argc, char** argv) {
  PrintStability();
  PrintRegimen();
  return ddgms::bench::BenchMain(argc, argv, "bench_a5_optimisation");
}
