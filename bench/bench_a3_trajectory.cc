// Experiment A3: disease-trajectory prediction (paper §IV Prediction).
// Markov model over FBG temporal-abstraction states vs the majority
// baseline, on held-out patients.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "predict/forecast.h"
#include "predict/markov.h"

namespace {

using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;
using ddgms::predict::EvaluateTrajectories;
using ddgms::predict::ExtractSequences;
using ddgms::predict::MarkovTrajectoryModel;

struct SequenceSplit {
  std::vector<std::vector<std::string>> train;
  std::vector<std::vector<std::string>> test;
};

SequenceSplit MakeSplit() {
  const auto& flat = SharedDgms().transformed();
  auto sequences = MustOk(
      ExtractSequences(flat, "PatientId", "VisitDate", "FBGBand"),
      "sequences");
  SequenceSplit split;
  for (size_t i = 0; i < sequences.size(); ++i) {
    ((i % 10) < 7 ? split.train : split.test).push_back(sequences[i]);
  }
  return split;
}

void PrintReport() {
  std::printf("=== A3: trajectory prediction (FBG bands) ===\n\n");
  SequenceSplit split = MakeSplit();
  MarkovTrajectoryModel model;
  if (!model.TrainFromSequences(split.train).ok()) return;
  std::printf("train sequences: %zu, test sequences: %zu\n\n",
              split.train.size(), split.test.size());
  std::printf("%s\n", model.ToString().c_str());
  auto report = MustOk(EvaluateTrajectories(model, split.test), "eval");
  std::printf(
      "next-state accuracy over %zu held-out transitions:\n"
      "  markov model      %.4f\n"
      "  majority baseline %.4f\n"
      "(expected shape: model >= baseline; states are sticky so both "
      "are high)\n\n",
      report.transitions, report.model_accuracy,
      report.baseline_accuracy);

  // Numeric forecasting: continuous FBG at the final visit, linear
  // trend vs carry-forward.
  const auto& flat = SharedDgms().transformed();
  auto forecast = ddgms::predict::EvaluateForecaster(
      flat, "PatientId", "VisitDate", "FBG");
  if (forecast.ok() && forecast->evaluated > 0) {
    std::printf(
        "numeric FBG forecast over %zu held-out final visits:\n"
        "  linear trend MAE   %.4f mmol/L\n"
        "  carry-forward MAE  %.4f mmol/L\n"
        "(with 2-5 noisy readings per patient, carry-forward is the "
        "stronger\nprior — the trend model needs longer series; both "
        "are reported so the\nclinician can see it)\n\n",
        forecast->evaluated, forecast->model_mae,
        forecast->baseline_mae);
  }
}

void BM_MarkovTrain(benchmark::State& state) {
  SequenceSplit split = MakeSplit();
  for (auto _ : state) {
    MarkovTrajectoryModel model;
    auto st = model.TrainFromSequences(split.train);
    benchmark::DoNotOptimize(st);
  }
}
DDGMS_BENCHMARK(BM_MarkovTrain)->Unit(benchmark::kMicrosecond);

void BM_MarkovPredict(benchmark::State& state) {
  SequenceSplit split = MakeSplit();
  MarkovTrajectoryModel model;
  if (!model.TrainFromSequences(split.train).ok()) return;
  size_t i = 0;
  const auto& states = model.states();
  for (auto _ : state) {
    auto next = model.PredictNext(states[i % states.size()]);
    benchmark::DoNotOptimize(next);
    ++i;
  }
}
DDGMS_BENCHMARK(BM_MarkovPredict);

void BM_ExtractSequences(benchmark::State& state) {
  const auto& flat = SharedDgms().transformed();
  for (auto _ : state) {
    auto sequences =
        ExtractSequences(flat, "PatientId", "VisitDate", "FBGBand");
    benchmark::DoNotOptimize(sequences);
  }
}
DDGMS_BENCHMARK(BM_ExtractSequences)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  return ddgms::bench::BenchMain(argc, argv, "bench_a3_trajectory");
}
