// Experiment Fig 3: the dimensional model. Prints the star schema as
// built from the transformed cohort — fact row count, per-dimension
// member counts and attributes, hierarchy and key integrity — then
// times warehouse construction as the extract grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "warehouse/warehouse.h"

namespace {

using ddgms::Table;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;

void PrintStarSchema() {
  const auto& wh = SharedDgms().warehouse();
  std::printf("=== Fig 3: dimensional model (star schema) ===\n\n");
  std::printf("fact %s: %zu rows, measures:", wh.def().fact_name.c_str(),
              wh.num_fact_rows());
  for (const auto& m : wh.def().measures) {
    std::printf(" %s", m.name.c_str());
  }
  std::printf("\n\n%-22s %8s  attributes\n", "dimension", "members");
  for (const auto& dim : wh.dimensions()) {
    std::string attrs;
    for (const auto& a : dim.def().attributes) {
      if (!attrs.empty()) attrs += ", ";
      attrs += a;
    }
    std::printf("%-22s %8zu  %s\n", dim.name().c_str(),
                dim.num_members(), attrs.c_str());
  }
  auto integrity = wh.CheckIntegrity();
  std::printf("\n%s\n\n", integrity.ToString().c_str());
}

void BM_StarSchemaBuild(benchmark::State& state) {
  ddgms::discri::CohortOptions opt;
  opt.num_patients = static_cast<size_t>(state.range(0));
  auto raw = MustOk(ddgms::discri::GenerateCohort(opt), "cohort");
  auto pipeline = ddgms::discri::MakeDiscriPipeline();
  Table transformed = raw;
  MustOk(pipeline.Run(&transformed), "pipeline");
  ddgms::warehouse::StarSchemaBuilder builder(
      ddgms::discri::MakeDiscriSchemaDef());
  for (auto _ : state) {
    auto wh = builder.Build(transformed);
    benchmark::DoNotOptimize(wh);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(transformed.num_rows()));
  state.counters["fact_rows"] =
      static_cast<double>(transformed.num_rows());
}
DDGMS_BENCHMARK(BM_StarSchemaBuild)->Arg(100)->Arg(300)->Arg(900)->Arg(2700)
    ->Unit(benchmark::kMillisecond);

void BM_TransformPipeline(benchmark::State& state) {
  ddgms::discri::CohortOptions opt;
  opt.num_patients = static_cast<size_t>(state.range(0));
  auto raw = MustOk(ddgms::discri::GenerateCohort(opt), "cohort");
  auto pipeline = ddgms::discri::MakeDiscriPipeline();
  for (auto _ : state) {
    Table copy = raw;
    auto report = pipeline.Run(&copy);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(raw.num_rows()));
}
DDGMS_BENCHMARK(BM_TransformPipeline)->Arg(300)->Arg(900)
    ->Unit(benchmark::kMillisecond);

// Data acquisition ablation: appending a new screening season
// incrementally (reusing member dictionaries) vs rebuilding the whole
// star schema.
ddgms::Table TransformedBatch(size_t patients, uint64_t seed) {
  ddgms::discri::CohortOptions opt;
  opt.num_patients = patients;
  opt.seed = seed;
  auto raw = MustOk(ddgms::discri::GenerateCohort(opt), "cohort");
  auto pipeline = ddgms::discri::MakeDiscriPipeline();
  MustOk(pipeline.Run(&raw), "pipeline");
  return raw;
}

void BM_IncrementalAppend(benchmark::State& state) {
  Table base = TransformedBatch(900, 1);
  Table batch = TransformedBatch(100, 2);
  ddgms::warehouse::StarSchemaBuilder builder(
      ddgms::discri::MakeDiscriSchemaDef());
  for (auto _ : state) {
    state.PauseTiming();
    auto wh = MustOk(builder.Build(base), "build");
    state.ResumeTiming();
    auto st = wh.AppendRows(batch);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.num_rows()));
}
DDGMS_BENCHMARK(BM_IncrementalAppend)->Unit(benchmark::kMillisecond);

void BM_FullRebuildForAppend(benchmark::State& state) {
  Table base = TransformedBatch(900, 1);
  Table batch = TransformedBatch(100, 2);
  Table combined = base;
  if (!combined.Concat(batch).ok()) std::abort();
  ddgms::warehouse::StarSchemaBuilder builder(
      ddgms::discri::MakeDiscriSchemaDef());
  for (auto _ : state) {
    auto wh = builder.Build(combined);
    benchmark::DoNotOptimize(wh);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.num_rows()));
}
DDGMS_BENCHMARK(BM_FullRebuildForAppend)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintStarSchema();
  return ddgms::bench::BenchMain(argc, argv, "bench_fig3_starschema");
}
