// Experiment Fig 4: the drag-and-drop query — family history of
// diabetes by age group and gender. Reproduces the cross-tab through
// both the programmatic CubeQuery builder and MDX, prints the grid,
// then times the query paths.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "mdx/executor.h"
#include "mdx/parser.h"
#include "report/render.h"

namespace {

using ddgms::AggFn;
using ddgms::AggSpec;
using ddgms::Value;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;

const char* kMdxQuery =
    "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS, "
    "CROSSJOIN( { [PersonalInformation].[AgeBand].Members }, "
    "{ [PersonalInformation].[FamilyHistoryDiabetes].Members } ) "
    "ON ROWS FROM [MedicalMeasures]";

void PrintFig4() {
  auto& dgms = SharedDgms();
  std::printf(
      "=== Fig 4: family history of diabetes by age group x gender "
      "===\n\n");
  // Programmatic path: age band x family history x gender counts,
  // rendered as one pivot per family-history value.
  for (const char* fam : {"Yes", "No"}) {
    ddgms::olap::CubeQuery q;
    q.axes = {{"PersonalInformation", "AgeBand", {}},
              {"PersonalInformation", "Gender", {}}};
    q.slicers = {{"PersonalInformation", "FamilyHistoryDiabetes",
                  {Value::Str(fam)}}};
    q.measures = {AggSpec{AggFn::kCount, "", "attendances"}};
    auto cube = MustOk(dgms.Query(q), "fig4 query");
    auto grid = MustOk(cube.Pivot(0, 1), "fig4 pivot");
    auto text = MustOk(
        ddgms::report::RenderPivot(
            grid, {.title = std::string("FamilyHistoryDiabetes = ") +
                            fam}),
        "fig4 render");
    std::printf("%s\n", text.c_str());
  }
  std::printf("MDX equivalent:\n  %s\n\n", kMdxQuery);
}

void BM_Fig4CubeQuery(benchmark::State& state) {
  auto& dgms = SharedDgms();
  ddgms::olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand", {}},
            {"PersonalInformation", "FamilyHistoryDiabetes", {}},
            {"PersonalInformation", "Gender", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  for (auto _ : state) {
    auto cube = dgms.Query(q);
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_Fig4CubeQuery)->Unit(benchmark::kMicrosecond);

void BM_Fig4Mdx(benchmark::State& state) {
  auto& dgms = SharedDgms();
  for (auto _ : state) {
    auto result = dgms.QueryMdx(kMdxQuery);
    benchmark::DoNotOptimize(result);
  }
}
DDGMS_BENCHMARK(BM_Fig4Mdx)->Unit(benchmark::kMicrosecond);

void BM_Fig4MdxParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ddgms::mdx::Parse(kMdxQuery);
    benchmark::DoNotOptimize(parsed);
  }
}
DDGMS_BENCHMARK(BM_Fig4MdxParseOnly);

}  // namespace

int main(int argc, char** argv) {
  PrintFig4();
  return ddgms::bench::BenchMain(argc, argv, "bench_fig4_familyhistory");
}
