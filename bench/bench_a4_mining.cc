// Experiment A4: data analytics on OLAP-isolated cube subsets (paper
// §IV Data Analytics). Classifier comparison for diabetes (naive
// Bayes, decision tree, AWSum, multivariate logistic regression
// baseline) plus association rules recovering the reflex/glucose
// interaction of the paper's ref [9].

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "mining/apriori.h"
#include "mining/awsum.h"
#include "mining/dataset.h"
#include "mining/decision_tree.h"
#include "mining/eval.h"
#include "mining/feature_selection.h"
#include "mining/logistic.h"
#include "mining/naive_bayes.h"
#include "mining/random_forest.h"

namespace {

using ddgms::Rng;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;
namespace mining = ddgms::mining;

const std::vector<std::string>& CategoricalFeatures() {
  static const std::vector<std::string> kFeatures = {
      "FBGBand",       "HbA1cBand",  "AnkleReflexes",
      "KneeReflexes",  "BMIBand",    "AgeBand",
      "FamilyHistoryDiabetes", "ExerciseRoutine"};
  return kFeatures;
}

mining::CategoricalDataset LoadCategorical() {
  auto& dgms = SharedDgms();
  std::vector<std::string> attrs = CategoricalFeatures();
  attrs.push_back("DiabetesStatus");
  auto view = MustOk(dgms.IsolateSubset(attrs), "subset");
  return MustOk(mining::CategoricalDataset::FromTable(
                    view, CategoricalFeatures(), "DiabetesStatus"),
                "dataset");
}

void PrintReport() {
  std::printf(
      "=== A4: mining on OLAP-isolated subsets (diabetes) ===\n\n");
  mining::CategoricalDataset data = LoadCategorical();
  Rng rng(4242);
  auto split = MustOk(data.Split(0.3, &rng), "split");
  double baseline = MustOk(
      mining::MajorityBaselineAccuracy(split.first, split.second),
      "baseline");
  std::printf("train=%zu test=%zu majority-baseline=%.4f\n\n",
              split.first.size(), split.second.size(), baseline);

  std::vector<std::unique_ptr<mining::Classifier>> models;
  models.push_back(std::make_unique<mining::NaiveBayesClassifier>());
  models.push_back(std::make_unique<mining::DecisionTreeClassifier>());
  models.push_back(std::make_unique<mining::AwsumClassifier>());
  models.push_back(std::make_unique<mining::RandomForestClassifier>());
  for (auto& model : models) {
    if (!model->Train(split.first).ok()) continue;
    auto report = MustOk(mining::Evaluate(*model, split.second), "eval");
    std::printf("%-14s accuracy=%.4f\n", model->name().c_str(),
                report.accuracy);
  }

  // Logistic regression on the continuous measures — the a-priori
  // multivariate-regression baseline of the paper's motivation.
  {
    auto view = MustOk(SharedDgms().IsolateSubset({"DiabetesStatus"}),
                       "numeric subset");
    auto numeric = MustOk(
        mining::NumericDataset::FromTable(
            view, {"FBG", "HbA1c", "BMI", "Age", "LyingSBPAverage"},
            "DiabetesStatus"),
        "numeric dataset");
    Rng rng2(99);
    auto nsplit = MustOk(numeric.Split(0.3, &rng2), "nsplit");
    mining::LogisticRegression::Options opt;
    opt.max_iterations = 800;
    mining::LogisticRegression logistic(opt);
    if (logistic.Train(nsplit.first, "Type2").ok()) {
      size_t correct = 0;
      for (size_t i = 0; i < nsplit.second.size(); ++i) {
        auto pred = logistic.Predict(nsplit.second.rows[i]);
        if (pred.ok() && *pred == nsplit.second.labels[i]) ++correct;
      }
      std::printf("%-14s accuracy=%.4f (continuous features)\n",
                  "logistic", static_cast<double>(correct) /
                                  static_cast<double>(
                                      nsplit.second.size()));
    }
  }

  // AWSum interactions and Apriori rules.
  mining::AwsumClassifier awsum;
  if (awsum.Train(data).ok()) {
    auto interactions = awsum.Interactions(/*min_support=*/25);
    if (interactions.ok() && !interactions->empty()) {
      std::printf("\ntop AWSum interactions (joint influence lift):\n");
      size_t shown = 0;
      for (const auto& inter : *interactions) {
        if (inter.toward_class != "Type2") continue;
        std::printf("  %s=%s & %s=%s -> %s (joint %.3f vs single %.3f, "
                    "n=%zu)\n",
                    inter.feature_a.c_str(), inter.value_a.c_str(),
                    inter.feature_b.c_str(), inter.value_b.c_str(),
                    inter.toward_class.c_str(), inter.joint_influence,
                    inter.max_single_influence, inter.support);
        if (++shown == 5) break;
      }
    }
  }
  // Wrapper-filter feature selection (ref [21]): which attributes does
  // the hybrid keep for the Ewing/CAN screen?
  {
    std::vector<std::string> can_features = {
        "AnkleReflexes", "KneeReflexes",  "Monofilament",
        "LyingDBPBand",  "HeartRateBand", "QTcBand",
        "AgeBand",       "ExerciseRoutine"};
    std::vector<std::string> attrs = can_features;
    attrs.push_back("EwingCategory");
    auto can_view = MustOk(SharedDgms().IsolateSubset(attrs), "can view");
    auto can_data = MustOk(
        mining::CategoricalDataset::FromTable(can_view, can_features,
                                              "EwingCategory"),
        "can dataset");
    auto selection = mining::WrapperFilterSelect(can_data, [] {
      return std::make_unique<mining::NaiveBayesClassifier>();
    });
    if (selection.ok()) {
      std::printf("\nwrapper-filter feature selection (CAN screen, "
                  "cv acc %.4f):",
                  selection->cv_accuracy);
      for (const std::string& f : selection->selected) {
        std::printf(" %s", f.c_str());
      }
      std::printf("\nfilter ranking (info gain):");
      for (size_t i = 0; i < 4 && i < selection->filter_ranking.size();
           ++i) {
        std::printf(" %s=%.3f",
                    selection->filter_ranking[i].feature.c_str(),
                    selection->filter_ranking[i].info_gain);
      }
      std::printf("\n");
    }
  }

  mining::AprioriOptions aopt;
  aopt.min_support = 0.05;
  aopt.min_confidence = 0.75;
  mining::Apriori apriori(aopt);
  auto rules = apriori.MineRules(data, "Diabetes");
  if (rules.ok()) {
    std::printf("\ntop association rules (by lift):\n");
    size_t shown = 0;
    for (const auto& rule : *rules) {
      if (rule.rhs[0].feature != "Diabetes") continue;
      std::printf("  %s (sup %.3f, conf %.3f, lift %.2f)\n",
                  rule.ToString().c_str(), rule.support, rule.confidence,
                  rule.lift);
      if (++shown == 6) break;
    }
  }
  std::printf("\n");
}

void BM_NaiveBayesTrain(benchmark::State& state) {
  mining::CategoricalDataset data = LoadCategorical();
  for (auto _ : state) {
    mining::NaiveBayesClassifier nb;
    auto st = nb.Train(data);
    benchmark::DoNotOptimize(st);
  }
}
DDGMS_BENCHMARK(BM_NaiveBayesTrain)->Unit(benchmark::kMillisecond);

void BM_DecisionTreeTrain(benchmark::State& state) {
  mining::CategoricalDataset data = LoadCategorical();
  for (auto _ : state) {
    mining::DecisionTreeClassifier tree;
    auto st = tree.Train(data);
    benchmark::DoNotOptimize(st);
  }
}
DDGMS_BENCHMARK(BM_DecisionTreeTrain)->Unit(benchmark::kMillisecond);

void BM_AwsumTrain(benchmark::State& state) {
  mining::CategoricalDataset data = LoadCategorical();
  for (auto _ : state) {
    mining::AwsumClassifier awsum;
    auto st = awsum.Train(data);
    benchmark::DoNotOptimize(st);
  }
}
DDGMS_BENCHMARK(BM_AwsumTrain)->Unit(benchmark::kMillisecond);

void BM_AprioriMine(benchmark::State& state) {
  mining::CategoricalDataset data = LoadCategorical();
  mining::AprioriOptions opt;
  opt.min_support = 0.10;
  mining::Apriori apriori(opt);
  for (auto _ : state) {
    auto rules = apriori.MineRules(data, "Diabetes");
    benchmark::DoNotOptimize(rules);
  }
}
DDGMS_BENCHMARK(BM_AprioriMine)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  return ddgms::bench::BenchMain(argc, argv, "bench_a4_mining");
}
