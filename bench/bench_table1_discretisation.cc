// Experiment Table I: the paper's clinical discretisation schemes
// applied to the screening cohort. Prints each scheme with its band
// boundaries/labels and the resulting band populations, then times
// scheme application.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "discri/schemes.h"
#include "etl/discretize.h"

namespace {

using ddgms::Table;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;

void PrintTableOne() {
  const Table& flat = SharedDgms().transformed();
  std::printf("=== Table I: clinical discretisation schemes ===\n");
  for (const auto& entry : ddgms::discri::TableOneSchemes()) {
    std::printf("\n%s — %s\n  %s\n", entry.attribute.c_str(),
                entry.description.c_str(),
                entry.scheme.ToString().c_str());
    auto col = flat.ColumnByName(entry.attribute);
    if (!col.ok()) continue;
    std::vector<size_t> counts(entry.scheme.num_bins(), 0);
    size_t nulls = 0;
    for (size_t i = 0; i < (*col)->size(); ++i) {
      if ((*col)->IsNull(i)) {
        ++nulls;
        continue;
      }
      auto v = (*col)->NumericAt(i);
      if (v.ok()) counts[entry.scheme.BinIndex(*v)]++;
    }
    std::printf("  bands:");
    for (size_t b = 0; b < counts.size(); ++b) {
      std::printf(" %s=%zu", entry.scheme.labels()[b].c_str(), counts[b]);
    }
    std::printf(" (null=%zu)\n", nulls);
  }
  std::printf("\n");
}

void BM_ApplyClinicalScheme(benchmark::State& state) {
  const Table& flat = SharedDgms().transformed();
  auto scheme = ddgms::discri::FbgScheme();
  for (auto _ : state) {
    Table copy = flat;
    auto st = ddgms::etl::ApplyScheme(&copy, "FBG", scheme, "Band_bm");
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flat.num_rows()));
}
DDGMS_BENCHMARK(BM_ApplyClinicalScheme);

void BM_BinIndexLookup(benchmark::State& state) {
  auto scheme = ddgms::discri::FbgScheme();
  double v = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.BinIndex(v));
    v += 0.37;
    if (v > 12.0) v = 4.0;
  }
}
DDGMS_BENCHMARK(BM_BinIndexLookup);

}  // namespace

int main(int argc, char** argv) {
  PrintTableOne();
  return ddgms::bench::BenchMain(argc, argv, "bench_table1_discretisation");
}
