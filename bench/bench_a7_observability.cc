// A7: cost of the observability subsystem.
//
// The acceptance budget is <= 2% overhead on a warehouse build with
// instrumentation compiled in but DISABLED (the shipping default).
// That budget covers all three collectors — metrics, trace spans and
// the flight-recorder event log:
// BM_WarehouseBuildInstrumentationOff vs ...On measures it directly.
// The microbenchmarks price the individual primitives on both the
// disabled path (one relaxed atomic load) and the enabled path
// (registry lookup + atomic update / span record / log record), plus
// one full TelemetrySampler snapshot.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "common/http.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/query_registry.h"
#include "common/slo.h"
#include "common/trace.h"
#include "common/window.h"
#include "server/observability.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "warehouse/telemetry.h"
#include "warehouse/warehouse.h"

namespace {

using namespace ddgms;  // NOLINT: bench brevity

Table MakeCohort(size_t patients) {
  discri::CohortOptions opt;
  opt.num_patients = patients;
  opt.seed = 20130408;
  Table raw = bench::MustOk(discri::GenerateCohort(opt), "cohort");
  etl::TransformPipeline pipeline = discri::MakeDiscriPipeline();
  bench::MustOk(pipeline.Run(&raw), "pipeline");
  return raw;
}

void RunWarehouseBuild(benchmark::State& state, bool enabled) {
  const Table transformed = MakeCohort(600);
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  if (enabled) {
    MetricsRegistry::Enable();
    TraceCollector::Enable();
    EventLog::Enable();
  } else {
    MetricsRegistry::Disable();
    TraceCollector::Disable();
    EventLog::Disable();
  }
  for (auto _ : state) {
    auto wh = builder.Build(transformed);
    if (!wh.ok()) state.SkipWithError("build failed");
    benchmark::DoNotOptimize(wh);
  }
  state.counters["fact_rows"] =
      static_cast<double>(transformed.num_rows());
  MetricsRegistry::Disable();
  TraceCollector::Disable();
  EventLog::Disable();
  MetricsRegistry::Global().ResetValues();
  TraceCollector::Global().Clear();
  EventLog::Global().Clear();
}

void BM_WarehouseBuildInstrumentationOff(benchmark::State& state) {
  RunWarehouseBuild(state, /*enabled=*/false);
}
DDGMS_BENCHMARK(BM_WarehouseBuildInstrumentationOff)
    ->Unit(benchmark::kMillisecond);

void BM_WarehouseBuildInstrumentationOn(benchmark::State& state) {
  RunWarehouseBuild(state, /*enabled=*/true);
}
DDGMS_BENCHMARK(BM_WarehouseBuildInstrumentationOn)
    ->Unit(benchmark::kMillisecond);

void BM_CounterDisabled(benchmark::State& state) {
  MetricsRegistry::Disable();
  for (auto _ : state) {
    DDGMS_METRIC_INC("ddgms.bench.counter");
  }
}
DDGMS_BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  MetricsRegistry::Enable();
  for (auto _ : state) {
    DDGMS_METRIC_INC("ddgms.bench.counter");
  }
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_CounterEnabled);

void BM_CounterEnabledCachedRef(benchmark::State& state) {
  MetricsRegistry::Enable();
  Counter& counter =
      MetricsRegistry::Global().GetCounter("ddgms.bench.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_CounterEnabledCachedRef);

void BM_HistogramEnabled(benchmark::State& state) {
  MetricsRegistry::Enable();
  double v = 0.0;
  for (auto _ : state) {
    DDGMS_METRIC_OBSERVE("ddgms.bench.histogram", v);
    v += 1.0;
    if (v > 1e6) v = 0.0;
  }
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_HistogramEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  TraceCollector::Disable();
  for (auto _ : state) {
    TraceSpan span("bench.span");
    span.SetAttribute("i", 1);
    benchmark::DoNotOptimize(span.active());
  }
}
DDGMS_BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  TraceCollector::Enable();
  for (auto _ : state) {
    TraceSpan span("bench.span");
    span.SetAttribute("i", 1);
    benchmark::DoNotOptimize(span.active());
  }
  TraceCollector::Disable();
  TraceCollector::Global().Clear();
}
DDGMS_BENCHMARK(BM_SpanEnabled);

void BM_LogDisabled(benchmark::State& state) {
  EventLog::Disable();
  for (auto _ : state) {
    DDGMS_LOG_INFO("bench.event").With("i", 1);
  }
}
DDGMS_BENCHMARK(BM_LogDisabled);

void BM_LogEnabled(benchmark::State& state) {
  EventLog::Enable();
  for (auto _ : state) {
    DDGMS_LOG_INFO("bench.event").With("i", 1);
  }
  EventLog::Disable();
  EventLog::Global().Clear();
}
DDGMS_BENCHMARK(BM_LogEnabled);

void BM_LogBelowMinLevel(benchmark::State& state) {
  // Enabled log, debug record under the default info threshold: the
  // level check must keep the call site as cheap as the disabled gate.
  EventLog::Enable();
  for (auto _ : state) {
    DDGMS_LOG_DEBUG("bench.event").With("i", 1);
  }
  EventLog::Disable();
  EventLog::Global().Clear();
}
DDGMS_BENCHMARK(BM_LogBelowMinLevel);

void BM_ChargeDisabled(benchmark::State& state) {
  // The shipping default: one relaxed atomic load per charge site.
  ResourceMeter::Disable();
  for (auto _ : state) {
    DDGMS_RESOURCE_CHARGE(64);
  }
}
DDGMS_BENCHMARK(BM_ChargeDisabled);

void BM_ChargeEnabled(benchmark::State& state) {
  // TLS pool read + relaxed adds up the ancestor chain + peak CAS.
  ResourceMeter::Enable();
  ScopedAccounting accounting("olap.cube.cache");
  for (auto _ : state) {
    DDGMS_RESOURCE_CHARGE(64);
  }
  ResourceMeter::Disable();
  ResourceMeter::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_ChargeEnabled);

void BM_WarehouseBuildMetered(benchmark::State& state) {
  // Full warehouse build with ONLY resource accounting on: the cost of
  // per-append byte attribution, comparable against
  // BM_WarehouseBuildInstrumentationOff.
  const Table transformed = MakeCohort(600);
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  MetricsRegistry::Disable();
  TraceCollector::Disable();
  EventLog::Disable();
  ResourceMeter::Enable();
  for (auto _ : state) {
    auto wh = builder.Build(transformed);
    if (!wh.ok()) state.SkipWithError("build failed");
    benchmark::DoNotOptimize(wh);
  }
  // Keep the counters: with --iterations pinned the attributed peak is
  // deterministic, and the harness exports it as meter_peak_bytes.
  ResourceMeter::Disable();
}
DDGMS_BENCHMARK(BM_WarehouseBuildMetered)->Unit(benchmark::kMillisecond);

void BM_WarehouseBuildProfiled(benchmark::State& state) {
  // Build under the 99 Hz sampling profiler; acceptance budget is
  // <= 5% over BM_WarehouseBuildInstrumentationOff.
  const Table transformed = MakeCohort(600);
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  MetricsRegistry::Disable();
  TraceCollector::Disable();
  EventLog::Disable();
  const bool profiling = Profiler::Global().Start().ok();
  for (auto _ : state) {
    auto wh = builder.Build(transformed);
    if (!wh.ok()) state.SkipWithError("build failed");
    benchmark::DoNotOptimize(wh);
  }
  if (profiling) {
    Profiler::Global().Stop().IgnoreError();
    state.counters["samples"] =
        static_cast<double>(Profiler::Global().samples_captured());
    Profiler::Global().Clear();
  }
}
DDGMS_BENCHMARK(BM_WarehouseBuildProfiled)
    ->Unit(benchmark::kMillisecond);

void BM_QueryRegistryBeginEnd(benchmark::State& state) {
  // Per-query cost of the in-flight registry: one Begin/End pair with
  // a TLS stage update in between (what every QueryMdx now pays when
  // the registry is enabled).
  QueryRegistry::Enable();
  for (auto _ : state) {
    ScopedQueryRecord record("mdx", "bench query");
    QueryRegistry::SetCurrentStage("execute");
    benchmark::DoNotOptimize(record.id());
  }
  QueryRegistry::Disable();
  QueryRegistry::Global().ResetForTesting();
}
DDGMS_BENCHMARK(BM_QueryRegistryBeginEnd);

void BM_QueryRegistryDisabled(benchmark::State& state) {
  // The shipping default: one relaxed atomic load, no registration.
  QueryRegistry::Disable();
  for (auto _ : state) {
    ScopedQueryRecord record("mdx", "bench query");
    benchmark::DoNotOptimize(record.id());
  }
}
DDGMS_BENCHMARK(BM_QueryRegistryDisabled);

void BM_PrometheusExport(benchmark::State& state) {
  // One /metrics render over a populated registry — the per-scrape
  // serialization cost, independent of the HTTP transport.
  MetricsRegistry::Enable();
  for (int i = 0; i < 64; ++i) {
    DDGMS_METRIC_INC("ddgms.bench.counter");
    DDGMS_METRIC_OBSERVE("ddgms.bench.histogram",
                         static_cast<double>(i));
  }
  for (auto _ : state) {
    std::string text =
        MetricsRegistry::Global().Snapshot().ToPrometheusText();
    benchmark::DoNotOptimize(text);
  }
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_PrometheusExport)->Unit(benchmark::kMicrosecond);

void BM_WarehouseBuildServedScrape(benchmark::State& state) {
  // Acceptance: a warehouse build while a loopback scraper hammers
  // /metrics stays within the 2% A7 budget of the un-served build
  // (compare against BM_WarehouseBuildInstrumentationOn — the server
  // requires the registry enabled to have anything to serve).
  const Table transformed = MakeCohort(600);
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  MetricsRegistry::Enable();
  TraceCollector::Enable();
  EventLog::Enable();
  server::ObservabilityOptions options;
  options.start_watchdog = false;
  server::ObservabilityServer obs(options);
  if (!obs.Start().ok()) state.SkipWithError("server start failed");
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      HttpGet("127.0.0.1", obs.port(), "/metrics").status().IgnoreError();
    }
  });
  for (auto _ : state) {
    auto wh = builder.Build(transformed);
    if (!wh.ok()) state.SkipWithError("build failed");
    benchmark::DoNotOptimize(wh);
  }
  stop.store(true);
  scraper.join();
  obs.Stop().IgnoreError();
  MetricsRegistry::Disable();
  TraceCollector::Disable();
  EventLog::Disable();
  MetricsRegistry::Global().ResetValues();
  TraceCollector::Global().Clear();
  EventLog::Global().Clear();
}
DDGMS_BENCHMARK(BM_WarehouseBuildServedScrape)
    ->Unit(benchmark::kMillisecond);

void BM_TelemetrySample(benchmark::State& state) {
  // One full sampler snapshot over a populated registry + rings.
  MetricsRegistry::Enable();
  TraceCollector::Enable();
  EventLog::Enable();
  warehouse::TelemetrySampler sampler;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      DDGMS_METRIC_INC("ddgms.bench.counter");
      TraceSpan span("bench.span");
      DDGMS_LOG_INFO("bench.event").With("i", i);
    }
    auto stats = sampler.Sample();
    if (!stats.ok()) state.SkipWithError("sample failed");
    benchmark::DoNotOptimize(stats);
  }
  MetricsRegistry::Disable();
  TraceCollector::Disable();
  EventLog::Disable();
  MetricsRegistry::Global().ResetValues();
  TraceCollector::Global().Clear();
  EventLog::Global().Clear();
}
DDGMS_BENCHMARK(BM_TelemetrySample)->Unit(benchmark::kMicrosecond);

void BM_WindowTickDisabled(benchmark::State& state) {
  // The shipping default: a disabled registry's Tick() is one relaxed
  // atomic load, regardless of how many instruments are tracked.
  MetricsRegistry::Enable();
  WindowRegistry::Enable();
  WindowRegistry& windows = WindowRegistry::Global();
  for (int i = 0; i < 8; ++i) {
    const std::string name = "ddgms.bench.win" + std::to_string(i);
    windows.TrackCounter(name).IgnoreError();
    DDGMS_METRIC_INC(name);
  }
  WindowRegistry::Disable();
  for (auto _ : state) {
    windows.Tick();
  }
  WindowRegistry::Global().ResetForTesting();
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_WindowTickDisabled);

void BM_WindowTickEnabled(benchmark::State& state) {
  // One evaluator-period tick over a realistic tracked set: 8 counters
  // and 2 histograms across the three default window lengths. Each
  // iteration advances time 100ms and mutates every instrument so the
  // tick always has deltas to file.
  MetricsRegistry::Enable();
  WindowRegistry::Enable();
  WindowRegistry& windows = WindowRegistry::Global();
  windows.ResetForTesting();
  for (int i = 0; i < 8; ++i) {
    windows.TrackCounter("ddgms.bench.win" + std::to_string(i))
        .IgnoreError();
  }
  windows.TrackHistogram("ddgms.bench.winhist0").IgnoreError();
  windows.TrackHistogram("ddgms.bench.winhist1").IgnoreError();
  int64_t now_us = 1000000000;
  double v = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      DDGMS_METRIC_INC("ddgms.bench.win" + std::to_string(i));
    }
    DDGMS_METRIC_OBSERVE("ddgms.bench.winhist0", v);
    DDGMS_METRIC_OBSERVE("ddgms.bench.winhist1", v);
    v += 7.0;
    if (v > 1e6) v = 0.0;
    now_us += 100000;
    windows.TickAt(now_us);
  }
  WindowRegistry::Disable();
  WindowRegistry::Global().ResetForTesting();
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_WindowTickEnabled)->Unit(benchmark::kMicrosecond);

void BM_WindowStatsRead(benchmark::State& state) {
  // Merging one window's ring into WindowStats (count, rate, and the
  // interpolated percentiles) — what every SLO evaluation pays per
  // (instrument, window) pair.
  MetricsRegistry::Enable();
  WindowRegistry::Enable();
  WindowRegistry& windows = WindowRegistry::Global();
  windows.ResetForTesting();
  windows.TrackHistogram("ddgms.bench.winhist").IgnoreError();
  int64_t now_us = 1000000000;
  for (int i = 0; i < 128; ++i) {
    DDGMS_METRIC_OBSERVE("ddgms.bench.winhist",
                         static_cast<double>(i) * 13.0);
    now_us += 1000000;
    windows.TickAt(now_us);
  }
  for (auto _ : state) {
    auto stats = windows.Stats("ddgms.bench.winhist", 60);
    if (!stats.ok()) state.SkipWithError("stats failed");
    benchmark::DoNotOptimize(stats);
  }
  WindowRegistry::Disable();
  WindowRegistry::Global().ResetForTesting();
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_WindowStatsRead);

void BM_SloEvaluate(benchmark::State& state) {
  // One full evaluation pass over the three stock SLOs: a window tick
  // plus burn-rate math and state-machine bookkeeping per SLO — the
  // per-period cost of the evaluator thread.
  MetricsRegistry::Enable();
  WindowRegistry::Enable();
  SloEngine::Enable();
  SloEngine& engine = SloEngine::Global();
  engine.ResetForTesting();
  WindowRegistry::Global().ResetForTesting();
  engine.RegisterDefaultSlos().IgnoreError();
  Histogram& lat = MetricsRegistry::Global().GetHistogram(
      "ddgms.mdx.execute_latency_us");
  int64_t now_us = 1000000000;
  double v = 1000.0;
  for (auto _ : state) {
    lat.Observe(v);
    v = (v < 200000.0) ? v * 1.5 : 1000.0;
    now_us += 100000;
    engine.EvaluateAt(now_us);
  }
  SloEngine::Disable();
  engine.ResetForTesting();
  WindowRegistry::Disable();
  WindowRegistry::Global().ResetForTesting();
  MetricsRegistry::Disable();
  MetricsRegistry::Global().ResetValues();
}
DDGMS_BENCHMARK(BM_SloEvaluate)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== A7: observability overhead ===\n");
  std::printf("budget: instrumentation-off warehouse build within 2%% "
              "of the pre-instrumentation baseline\n\n");
  return ddgms::bench::BenchMain(argc, argv, "bench_a7_observability");
}
