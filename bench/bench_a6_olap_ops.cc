// Experiment A6: OLAP operation microbenchmarks — cube build, slice,
// dice, roll-up, drill-down and MDX execution as the fact table grows.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"

namespace {

using ddgms::AggFn;
using ddgms::AggSpec;
using ddgms::Value;
using ddgms::bench::MustOk;
namespace core = ddgms::core;

// Per-size DGMS cache (cohort sizes sweep the fact-row count).
core::DdDgms& DgmsOfSize(size_t patients) {
  static std::map<size_t, std::unique_ptr<core::DdDgms>> cache;
  auto it = cache.find(patients);
  if (it == cache.end()) {
    ddgms::discri::CohortOptions opt;
    opt.num_patients = patients;
    auto raw = MustOk(ddgms::discri::GenerateCohort(opt), "cohort");
    auto dgms = MustOk(
        core::DdDgms::Build(std::move(raw),
                            ddgms::discri::MakeDiscriPipeline(),
                            ddgms::discri::MakeDiscriSchemaDef()),
        "dgms");
    it = cache.emplace(patients,
                       std::make_unique<core::DdDgms>(std::move(dgms)))
             .first;
  }
  return *it->second;
}

ddgms::olap::CubeQuery ThreeAxisQuery() {
  ddgms::olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand10", {}},
            {"PersonalInformation", "Gender", {}},
            {"MedicalCondition", "DiabetesStatus", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"},
                AggSpec{AggFn::kAvg, "FBG", "avg_fbg"}};
  return q;
}

void BM_CubeBuild(benchmark::State& state) {
  auto& dgms = DgmsOfSize(static_cast<size_t>(state.range(0)));
  auto q = ThreeAxisQuery();
  for (auto _ : state) {
    auto cube = dgms.Query(q);
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
  state.counters["fact_rows"] =
      static_cast<double>(dgms.warehouse().num_fact_rows());
}
DDGMS_BENCHMARK(BM_CubeBuild)->Arg(300)->Arg(900)->Arg(2700)->Arg(8100)
    ->Unit(benchmark::kMicrosecond);

void BM_CubeBuildParallel(benchmark::State& state) {
  auto& dgms = DgmsOfSize(8100);
  ddgms::olap::CubeEngineOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(0));
  opt.parallel_threshold = 1;
  ddgms::olap::CubeEngine engine(&dgms.warehouse(), opt);
  auto q = ThreeAxisQuery();
  for (auto _ : state) {
    auto cube = engine.Execute(q);
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dgms.warehouse().num_fact_rows()));
}
DDGMS_BENCHMARK(BM_CubeBuildParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_Slice(benchmark::State& state) {
  auto& dgms = DgmsOfSize(900);
  auto cube = MustOk(dgms.Query(ThreeAxisQuery()), "cube");
  for (auto _ : state) {
    auto sliced = cube.Slice("MedicalCondition", "DiabetesStatus",
                             Value::Str("Type2"));
    benchmark::DoNotOptimize(sliced);
  }
}
DDGMS_BENCHMARK(BM_Slice)->Unit(benchmark::kMicrosecond);

void BM_Dice(benchmark::State& state) {
  auto& dgms = DgmsOfSize(900);
  auto cube = MustOk(dgms.Query(ThreeAxisQuery()), "cube");
  for (auto _ : state) {
    auto diced =
        cube.Dice("PersonalInformation", "AgeBand10",
                  {Value::Str("60-70"), Value::Str("70-80")});
    benchmark::DoNotOptimize(diced);
  }
}
DDGMS_BENCHMARK(BM_Dice)->Unit(benchmark::kMicrosecond);

void BM_RollUp(benchmark::State& state) {
  auto& dgms = DgmsOfSize(900);
  auto cube = MustOk(dgms.Query(ThreeAxisQuery()), "cube");
  for (auto _ : state) {
    auto rolled = cube.RollUp(2);
    benchmark::DoNotOptimize(rolled);
  }
}
DDGMS_BENCHMARK(BM_RollUp)->Unit(benchmark::kMicrosecond);

void BM_DrillDown(benchmark::State& state) {
  auto& dgms = DgmsOfSize(900);
  auto cube = MustOk(dgms.Query(ThreeAxisQuery()), "cube");
  for (auto _ : state) {
    auto drilled = cube.DrillDown(0);
    benchmark::DoNotOptimize(drilled);
  }
}
DDGMS_BENCHMARK(BM_DrillDown)->Unit(benchmark::kMicrosecond);

void BM_MdxEndToEnd(benchmark::State& state) {
  auto& dgms = DgmsOfSize(900);
  const char* query =
      "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS, "
      "{ [PersonalInformation].[AgeBand10].Members } ON ROWS "
      "FROM [MedicalMeasures] "
      "WHERE ( [MedicalCondition].[DiabetesStatus].[Type2] )";
  for (auto _ : state) {
    auto result = dgms.QueryMdx(query);
    benchmark::DoNotOptimize(result);
  }
}
DDGMS_BENCHMARK(BM_MdxEndToEnd)->Unit(benchmark::kMicrosecond);

void BM_JoinedView(benchmark::State& state) {
  auto& dgms = DgmsOfSize(900);
  for (auto _ : state) {
    auto view = dgms.IsolateSubset({"FBGBand", "DiabetesStatus"});
    benchmark::DoNotOptimize(view);
  }
}
DDGMS_BENCHMARK(BM_JoinedView)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== A6: OLAP operation microbenchmarks ===\n\n");
  return ddgms::bench::BenchMain(argc, argv, "bench_a6_olap_ops");
}
