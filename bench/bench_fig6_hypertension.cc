// Experiment Fig 6: distribution of years since hypertension diagnosis
// by age group, using the Table I clinical scheme. The drill-down into
// 5-year age bands exposes the drop of 5-10-year cases in the 70-75
// and 75-80 sub-bands.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "discri/schemes.h"
#include "report/render.h"

namespace {

using ddgms::AggFn;
using ddgms::AggSpec;
using ddgms::Value;
using ddgms::bench::MustOk;
using ddgms::bench::SharedDgms;

std::vector<Value> DurationMembers() {
  // Keep the scheme alive across the loop: in C++20 a range-for over a
  // member of a temporary dangles.
  auto scheme = ddgms::discri::DiagnosticHtYearsScheme();
  std::vector<Value> members;
  for (const std::string& l : scheme.labels()) {
    members.push_back(Value::Str(l));
  }
  return members;
}

std::vector<Value> AgeMembers(const std::string& age_attr) {
  auto scheme = age_attr == "AgeBand10"
                    ? ddgms::discri::AgeBand10Scheme()
                    : ddgms::discri::AgeBand5Scheme();
  std::vector<Value> members;
  for (const std::string& l : scheme.labels()) {
    members.push_back(Value::Str(l));
  }
  return members;
}

ddgms::olap::CubeQuery Fig6Query(const std::string& age_attr) {
  ddgms::olap::CubeQuery q;
  q.axes = {{"PersonalInformation", age_attr, AgeMembers(age_attr)},
            {"MedicalCondition", "DiagnosticHTYearsBand",
             DurationMembers()}};
  q.slicers = {{"MedicalCondition", "HypertensionStatus",
                {Value::Str("Yes")}}};
  q.measures = {AggSpec{AggFn::kCount, "", "cases"}};
  return q;
}

void PrintFig6() {
  auto& dgms = SharedDgms();
  std::printf(
      "=== Fig 6: years since hypertension diagnosis by age group "
      "===\n\n");
  auto coarse = MustOk(dgms.Query(Fig6Query("AgeBand10")), "fig6");
  auto coarse_grid = MustOk(coarse.Pivot(0, 1), "pivot");
  std::printf("%s\n",
              MustOk(ddgms::report::RenderPivot(
                         coarse_grid,
                         {.title = "10-year age bands x HT duration"}),
                     "render")
                  .c_str());

  auto fine = MustOk(dgms.Query(Fig6Query("AgeBand5")), "fig6 fine");
  auto fine_grid = MustOk(fine.Pivot(0, 1), "pivot");
  std::printf("\n%s\n",
              MustOk(ddgms::report::RenderPivot(
                         fine_grid,
                         {.title = "drill-down: 5-year age bands"}),
                     "render")
                  .c_str());

  auto count = [&](const char* age, const char* dur) {
    Value v = fine.CellValue({Value::Str(age), Value::Str(dur)});
    return v.is_null() ? int64_t{0} : v.int_value();
  };
  for (const char* age : {"70-75", "75-80"}) {
    std::printf(
        "paper-shape check %s: 5-10y=%lld vs 2-5y=%lld, 10-20y=%lld "
        "(paper: significant drop of 5-10y cases)\n",
        age, static_cast<long long>(count(age, "5-10")),
        static_cast<long long>(count(age, "2-5")),
        static_cast<long long>(count(age, "10-20")));
  }
  std::printf("\n");
}

void BM_Fig6Query(benchmark::State& state) {
  auto& dgms = SharedDgms();
  auto q = Fig6Query("AgeBand5");
  for (auto _ : state) {
    auto cube = dgms.Query(q);
    benchmark::DoNotOptimize(cube);
  }
}
DDGMS_BENCHMARK(BM_Fig6Query)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFig6();
  return ddgms::bench::BenchMain(argc, argv, "bench_fig6_hypertension");
}
