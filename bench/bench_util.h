#ifndef DDGMS_BENCH_BENCH_UTIL_H_
#define DDGMS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/profiler.h"
#include "common/resource.h"
#include "common/strings.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"

namespace ddgms::bench {

/// Builds (once per process) a DD-DGMS over a synthetic cohort of the
/// given size. Benchmarks share this to avoid regenerating per
/// iteration. Exits with the failing status — benches have no error
/// channel.
inline core::DdDgms& SharedDgms(size_t num_patients = 900,
                                uint64_t seed = 20130408) {
  static std::unique_ptr<core::DdDgms> dgms = [num_patients, seed] {
    discri::CohortOptions opt;
    opt.num_patients = num_patients;
    opt.seed = seed;
    auto raw = discri::GenerateCohort(opt);
    if (!raw.ok()) {
      std::fprintf(stderr, "cohort: %s\n", raw.status().ToString().c_str());
      std::exit(1);
    }
    auto built = core::DdDgms::Build(std::move(raw).value(),
                                     discri::MakeDiscriPipeline(),
                                     discri::MakeDiscriSchemaDef());
    if (!built.ok()) {
      std::fprintf(stderr, "dgms: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
    return std::make_unique<core::DdDgms>(std::move(built).value());
  }();
  return *dgms;
}

/// Unwraps a Result or exits with its status printed (bench-only).
template <typename T>
T MustOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// -------------------------------------------------------------------
/// Shared bench harness
///
/// Register benchmarks with DDGMS_BENCHMARK (a drop-in for BENCHMARK
/// that additionally records the registration) and end main with
/// BenchMain(). Every bench binary then shares flags beyond the
/// standard --benchmark_* set:
///
///   --json <path>       write machine-readable results (default
///                       BENCH_<name>.json in the working directory)
///   --no-json           console output only
///   --iterations <N>    pin every benchmark to exactly N iterations
///   --min-time <sec>    alias for --benchmark_min_time=<sec>
///   --repetitions <N>   alias for --benchmark_repetitions=<N>
///   --filter <regex>    alias for --benchmark_filter=<regex>
///   --meter             enable the ResourceMeter for the run, so the
///                       JSON's meter_peak_bytes is populated (off by
///                       default: accounting costs a few percent)
///   --profile <path>    sample the whole run with the wall-clock
///                       profiler (99 Hz) and write collapsed stacks
///                       (flamegraph.pl / speedscope input) to <path>
/// -------------------------------------------------------------------

/// Process peak resident set size in bytes (getrusage; Linux reports
/// ru_maxrss in KiB). 0 when unavailable.
inline uint64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/// Registration order of every DDGMS_BENCHMARK in this binary.
inline std::vector<::benchmark::internal::Benchmark*>&
TrackedBenchmarks() {
  static auto* tracked =
      new std::vector<::benchmark::internal::Benchmark*>();
  return *tracked;
}

/// Records a registration so BenchMain can re-configure it (e.g.
/// --iterations) before the run. Returns its argument for chaining.
inline ::benchmark::internal::Benchmark* Track(
    ::benchmark::internal::Benchmark* b) {
  TrackedBenchmarks().push_back(b);
  return b;
}

/// Drop-in replacement for BENCHMARK() that also tracks the
/// registration; configuration chains exactly as with BENCHMARK:
///   DDGMS_BENCHMARK(BM_Foo)->Arg(300)->Unit(benchmark::kMillisecond);
#define DDGMS_BENCHMARK(fn)                                       \
  static ::benchmark::internal::Benchmark* ddgms_bench_##fn =     \
      ::ddgms::bench::Track(::benchmark::RegisterBenchmark(#fn, fn))

/// Console reporter that also collects every run and, on Finalize,
/// writes them as a JSON document (BENCH_<name>.json by default) for
/// machine consumption in CI trend tracking.
class JsonTeeReporter : public ::benchmark::ConsoleReporter {
 public:
  /// `path` empty disables the JSON side channel.
  JsonTeeReporter(std::string bench_name, std::string path)
      : bench_name_(std::move(bench_name)), path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) runs_.push_back(run);
    ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    ConsoleReporter::Finalize();
    if (path_.empty()) return;
    Status st = WriteFile(path_, ToJson());
    if (!st.ok()) {
      std::fprintf(stderr, "bench json: %s\n", st.ToString().c_str());
      return;
    }
    std::fprintf(stderr, "wrote %s (%zu runs)\n", path_.c_str(),
                 runs_.size());
  }

 private:
  static std::string Escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += StrFormat("\\u%04x", c);
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"benchmark\": \"";
    out += Escape(bench_name_);
    out += "\",\n";
    // Memory attribution for CI trend tracking: OS-level peak RSS plus
    // the ResourceMeter's root-pool peak (0 unless metering was on).
    out += StrFormat("  \"peak_rss_bytes\": %llu,\n",
                     static_cast<unsigned long long>(PeakRssBytes()));
    out += StrFormat(
        "  \"meter_peak_bytes\": %lld,\n",
        static_cast<long long>(ResourceMeter::Global().root().peak()));
    out += "  \"benchmarks\": [";
    bool first = true;
    for (const Run& run : runs_) {
      if (!first) out += ",";
      first = false;
      out += "\n    {\"name\": \"";
      out += Escape(run.benchmark_name());
      out += "\", \"run_type\": \"";
      out += run.run_type == Run::RT_Aggregate ? "aggregate"
                                               : "iteration";
      out += "\"";
      if (!run.aggregate_name.empty()) {
        out += ", \"aggregate_name\": \"";
        out += Escape(run.aggregate_name);
        out += "\"";
      }
      out += StrFormat(", \"iterations\": %lld",
                       static_cast<long long>(run.iterations));
      out += StrFormat(", \"real_time\": %.6f",
                       run.GetAdjustedRealTime());
      out += StrFormat(", \"cpu_time\": %.6f",
                       run.GetAdjustedCPUTime());
      out += ", \"time_unit\": \"";
      out += ::benchmark::GetTimeUnitString(run.time_unit);
      out += "\"";
      for (const auto& [name, counter] : run.counters) {
        out += ", \"";
        out += Escape(name);
        out += StrFormat("\": %.6f", counter.value);
      }
      if (run.error_occurred) {
        out += ", \"error\": \"";
        out += Escape(run.error_message);
        out += "\"";
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  std::string bench_name_;
  std::string path_;
  std::vector<Run> runs_;
};

/// Shared main for bench binaries: parses the ddgms flags above,
/// forwards everything else (including native --benchmark_* flags) to
/// the benchmark library, and runs with the JSON tee reporter.
inline int BenchMain(int argc, char** argv,
                     const std::string& bench_name) {
  std::string json_path = "BENCH_" + bench_name + ".json";
  std::string profile_path;
  bool write_json = true;
  long long iterations = 0;
  std::vector<std::string> args;  // stable storage for forwarded argv
  args.push_back(argc > 0 ? argv[0] : bench_name.c_str());
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--json") == 0) {
      json_path = value("--json");
    } else if (std::strcmp(arg, "--no-json") == 0) {
      write_json = false;
    } else if (std::strcmp(arg, "--iterations") == 0) {
      iterations = std::atoll(value("--iterations"));
      if (iterations <= 0) {
        std::fprintf(stderr, "--iterations needs a positive count\n");
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--min-time") == 0) {
      args.push_back(std::string("--benchmark_min_time=") +
                     value("--min-time"));
    } else if (std::strcmp(arg, "--repetitions") == 0) {
      args.push_back(std::string("--benchmark_repetitions=") +
                     value("--repetitions"));
    } else if (std::strcmp(arg, "--filter") == 0) {
      args.push_back(std::string("--benchmark_filter=") +
                     value("--filter"));
    } else if (std::strcmp(arg, "--meter") == 0) {
      ResourceMeter::Enable();
    } else if (std::strcmp(arg, "--profile") == 0) {
      profile_path = value("--profile");
    } else {
      args.push_back(arg);
    }
  }
  if (iterations > 0) {
    for (::benchmark::internal::Benchmark* b : TrackedBenchmarks()) {
      b->Iterations(iterations);
    }
  }
  std::vector<char*> forwarded;
  forwarded.reserve(args.size());
  for (std::string& s : args) forwarded.push_back(s.data());
  int forwarded_argc = static_cast<int>(forwarded.size());
  ::benchmark::Initialize(&forwarded_argc, forwarded.data());
  JsonTeeReporter reporter(bench_name,
                           write_json ? json_path : std::string());
  if (!profile_path.empty()) {
    Status st = Profiler::Global().Start();
    if (!st.ok()) {
      std::fprintf(stderr, "profiler: %s\n", st.ToString().c_str());
      profile_path.clear();
    }
  }
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!profile_path.empty()) {
    Status st = Profiler::Global().Stop();
    auto dump = Profiler::Global().Dump();
    if (!st.ok() || !dump.ok()) {
      std::fprintf(stderr, "profiler: %s\n",
                   (!st.ok() ? st : dump.status()).ToString().c_str());
    } else {
      Status write = WriteFile(profile_path, dump->ToCollapsed());
      if (write.ok()) {
        std::fprintf(stderr, "wrote %s (%s)\n", profile_path.c_str(),
                     dump->Summary().c_str());
      } else {
        std::fprintf(stderr, "profile: %s\n",
                     write.ToString().c_str());
      }
    }
  }
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace ddgms::bench

#endif  // DDGMS_BENCH_BENCH_UTIL_H_
