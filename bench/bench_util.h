#ifndef DDGMS_BENCH_BENCH_UTIL_H_
#define DDGMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"

namespace ddgms::bench {

/// Builds (once per process) a DD-DGMS over a synthetic cohort of the
/// given size. Benchmarks share this to avoid regenerating per
/// iteration. Aborts on failure — benches have no error channel.
inline core::DdDgms& SharedDgms(size_t num_patients = 900,
                                uint64_t seed = 20130408) {
  static std::unique_ptr<core::DdDgms> dgms = [num_patients, seed] {
    discri::CohortOptions opt;
    opt.num_patients = num_patients;
    opt.seed = seed;
    auto raw = discri::GenerateCohort(opt);
    if (!raw.ok()) {
      std::fprintf(stderr, "cohort: %s\n", raw.status().ToString().c_str());
      std::abort();
    }
    auto built = core::DdDgms::Build(std::move(raw).value(),
                                     discri::MakeDiscriPipeline(),
                                     discri::MakeDiscriSchemaDef());
    if (!built.ok()) {
      std::fprintf(stderr, "dgms: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    return std::make_unique<core::DdDgms>(std::move(built).value());
  }();
  return *dgms;
}

/// Unwraps a Result or aborts with its status (bench-only).
template <typename T>
T MustOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace ddgms::bench

#endif  // DDGMS_BENCH_BENCH_UTIL_H_
